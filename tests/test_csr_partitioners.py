"""Dict-vs-CSR assignment equivalence for the baseline partitioners.

The CSR kernels of LDG, Fennel and Wang (and the vectorized paths of the
trivial baselines) must produce *identical* assignments to the dictionary
reference implementations for the same graph, seed and stream order —
including every tie and fallback rule.  These tests pin that contract on
unweighted and weighted graphs, across all stream orders, odd chunk sizes
(so chunk boundaries fall mid-stream), sparse original ids, and the
degenerate shapes (empty graph, isolated vertices, single partition).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.csr_stream import stream_order
from repro.partitioners.fennel import FennelPartitioner
from repro.partitioners.hashing import HashPartitioner, ModuloPartitioner
from repro.partitioners.ldg import LinearDeterministicGreedy
from repro.partitioners.metis import MetisLikePartitioner
from repro.partitioners.random_part import RandomPartitioner
from repro.partitioners.registry import make_partitioner
from repro.partitioners.wang import WangPartitioner


def _random_graph(num_vertices: int, num_edges: int, seed: int, weighted: bool = False):
    """A random simple graph as (UndirectedGraph, CSRGraph) twins."""
    rng = np.random.default_rng(seed)
    edges = rng.integers(num_vertices, size=(num_edges, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    key = np.minimum(edges[:, 0], edges[:, 1]) * num_vertices + np.maximum(
        edges[:, 0], edges[:, 1]
    )
    _, first = np.unique(key, return_index=True)
    edges = edges[np.sort(first)]
    if weighted:
        weights = rng.integers(1, 3, size=edges.shape[0])
    else:
        weights = np.ones(edges.shape[0], dtype=np.int64)
    graph = UndirectedGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for (u, v), w in zip(edges.tolist(), weights.tolist()):
        graph.add_edge(u, v, weight=w)
    csr = CSRGraph.from_edge_list(edges, num_vertices, weights=weights)
    return graph, csr


def _dense_reference(assignment: dict[int, int], csr: CSRGraph) -> np.ndarray:
    return np.asarray(
        [assignment[int(v)] for v in csr.original_ids.tolist()], dtype=np.int64
    )


# ----------------------------------------------------------------------
# LDG
# ----------------------------------------------------------------------
@pytest.mark.parametrize("order", ["natural", "random", "bfs"])
@pytest.mark.parametrize("weighted", [False, True])
def test_ldg_csr_matches_dict(order, weighted):
    graph, csr = _random_graph(800, 3200, seed=3, weighted=weighted)
    for seed in (0, 11):
        partitioner = LinearDeterministicGreedy(stream_order=order, seed=seed)
        reference = _dense_reference(dict(partitioner.partition(graph, 6)), csr)
        labels = partitioner.partition_array(csr, 6, chunk=193)
        assert np.array_equal(reference, labels), (order, seed)


def test_ldg_partition_accepts_csr_directly():
    graph, csr = _random_graph(300, 900, seed=5)
    partitioner = LinearDeterministicGreedy(seed=2)
    assert partitioner.partition(csr, 4) == dict(partitioner.partition(graph, 4))


def test_ldg_csr_handles_isolated_vertices_and_empty_graph():
    # Isolated vertices take the least-loaded fallback in both paths.
    graph = UndirectedGraph()
    for vertex in range(10):
        graph.add_vertex(vertex)
    graph.add_edge(0, 1)
    csr = CSRGraph.from_edge_list(np.asarray([[0, 1]]), 10)
    for order in ("natural", "random", "bfs"):
        partitioner = LinearDeterministicGreedy(stream_order=order, seed=1)
        reference = _dense_reference(dict(partitioner.partition(graph, 3)), csr)
        assert np.array_equal(reference, partitioner.partition_array(csr, 3))
    empty = CSRGraph.from_edge_list(np.empty((0, 2), dtype=np.int64), 0)
    assert LinearDeterministicGreedy().partition_array(empty, 3).shape == (0,)
    assert LinearDeterministicGreedy().partition(empty, 3) == {}


# ----------------------------------------------------------------------
# BFS stream order (satellite regression)
# ----------------------------------------------------------------------
def test_bfs_stream_order_is_breadth_first():
    # Path graph 0-1-2-...-9 plus a separate component {10, 11}: from any
    # root the BFS order must expand by distance, not depth.
    edges = [(i, i + 1) for i in range(9)] + [(10, 11)]
    graph = UndirectedGraph.from_edges(edges, num_vertices=12)
    partitioner = LinearDeterministicGreedy(stream_order="bfs", seed=0)
    order = partitioner._stream(graph)
    assert sorted(order) == list(range(12))
    position = {vertex: index for index, vertex in enumerate(order)}
    # Within the path component, BFS from the root yields positions that
    # increase monotonically with hop distance from the root.
    path_vertices = [v for v in order if v <= 9]
    root = path_vertices[0]
    distances = [abs(v - root) for v in path_vertices]
    assert distances == sorted(distances)
    # Components are contiguous in the stream.
    component = [v >= 10 for v in order]
    assert component == sorted(component) or component == sorted(component, reverse=True)


def test_bfs_stream_csr_matches_dict_reference():
    graph, csr = _random_graph(400, 700, seed=9)  # sparse -> several components
    partitioner = LinearDeterministicGreedy(stream_order="bfs", seed=4)
    assert partitioner._stream(graph) == stream_order(csr, "bfs", 4).tolist()


def test_bfs_uses_deque_not_quadratic_pop():
    # Regression for the old `queue.pop(0)` list implementation (O(n^2)):
    # the BFS queue must drain via collections.deque.popleft.
    import inspect

    source = inspect.getsource(LinearDeterministicGreedy._stream)
    assert "popleft" in source
    assert ".pop(0)" not in source


# ----------------------------------------------------------------------
# Fennel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("order", ["natural", "random"])
@pytest.mark.parametrize("weighted", [False, True])
def test_fennel_csr_matches_dict(order, weighted):
    graph, csr = _random_graph(800, 3200, seed=6, weighted=weighted)
    for seed in (0, 11):
        partitioner = FennelPartitioner(stream_order=order, seed=seed)
        reference = _dense_reference(dict(partitioner.partition(graph, 6)), csr)
        labels = partitioner.partition_array(csr, 6, chunk=193)
        assert np.array_equal(reference, labels), (order, seed)


def test_fennel_csr_respects_hard_capacity():
    graph, csr = _random_graph(600, 2400, seed=8)
    partitioner = FennelPartitioner(load_factor=1.05, seed=3)
    labels = partitioner.partition_array(csr, 5, chunk=101)
    counts = np.bincount(labels, minlength=5)
    assert counts.max() <= 1.05 * 600 / 5 + 1
    reference = _dense_reference(dict(partitioner.partition(graph, 5)), csr)
    assert np.array_equal(reference, labels)


def test_fennel_csr_single_partition_and_empty():
    graph, csr = _random_graph(50, 120, seed=2)
    partitioner = FennelPartitioner(seed=0)
    assert np.array_equal(
        partitioner.partition_array(csr, 1),
        _dense_reference(dict(partitioner.partition(graph, 1)), csr),
    )
    empty = CSRGraph.from_edge_list(np.empty((0, 2), dtype=np.int64), 0)
    assert FennelPartitioner().partition_array(empty, 4).shape == (0,)


# ----------------------------------------------------------------------
# Wang
# ----------------------------------------------------------------------
@pytest.mark.parametrize("weighted", [False, True])
def test_wang_csr_matches_dict(weighted):
    graph, csr = _random_graph(700, 2800, seed=4, weighted=weighted)
    for seed in (0, 9):
        partitioner = WangPartitioner(seed=seed)
        reference = _dense_reference(dict(partitioner.partition(graph, 5)), csr)
        labels = partitioner.partition_array(csr, 5, chunk=149)
        assert np.array_equal(reference, labels), seed


def test_wang_csr_with_size_bound_pressure():
    # A tight community bound exercises the blocked/re-evaluation logic.
    graph, csr = _random_graph(500, 3000, seed=12)
    partitioner = WangPartitioner(max_community_fraction=0.1, lpa_iterations=7, seed=5)
    reference = _dense_reference(dict(partitioner.partition(graph, 4)), csr)
    assert np.array_equal(reference, partitioner.partition_array(csr, 4, chunk=83))


def test_wang_csr_isolated_vertices():
    graph = UndirectedGraph()
    for vertex in range(12):
        graph.add_vertex(vertex)
    edges = [(0, 1), (1, 2), (3, 4)]
    for u, v in edges:
        graph.add_edge(u, v)
    csr = CSRGraph.from_edge_list(np.asarray(edges), 12)
    partitioner = WangPartitioner(seed=1)
    reference = _dense_reference(dict(partitioner.partition(graph, 3)), csr)
    assert np.array_equal(reference, partitioner.partition_array(csr, 3))


def test_wang_csr_self_loops_behave_as_absent():
    # UndirectedGraph rejects self-loops; the CSR kernel must treat them
    # as absent regardless of whether the zero-weight rebuild triggers
    # (regression: the rebuild used to drop loops the direct path kept).
    base = np.asarray([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 6], [5, 6]])
    base_w = np.asarray([5, 5, 5, 5, 5, 5, 1, 2])
    with_loop = CSRGraph.from_edge_list(
        np.vstack([base, [[6, 6]]]), 7, weights=np.concatenate([base_w, [9]])
    )
    with_loop_and_zero = CSRGraph.from_edge_list(
        np.vstack([base, [[6, 6]], [[0, 3]]]),
        7,
        weights=np.concatenate([base_w, [9], [0]]),
    )
    clean = CSRGraph.from_edge_list(base, 7, weights=base_w)
    partitioner = WangPartitioner(lpa_iterations=6, seed=0)
    expected = partitioner.partition_array(clean, 2)
    assert np.array_equal(partitioner.partition_array(with_loop, 2), expected)
    assert np.array_equal(partitioner.partition_array(with_loop_and_zero, 2), expected)


def test_wang_csr_zero_weight_edges_behave_as_absent():
    # Zero-weight edges cannot exist in UndirectedGraph (it rejects them);
    # the CSR kernel treats them as absent, i.e. the assignment equals the
    # one computed on the positive-weight subgraph.
    edges = np.asarray([[0, 1], [1, 2], [2, 3], [3, 0]])
    weights = np.asarray([1, 0, 1, 1])
    csr = CSRGraph.from_edge_list(edges, 4, weights=weights)
    positive = CSRGraph.from_edge_list(edges[weights > 0], 4, weights=weights[weights > 0])
    partitioner = WangPartitioner(seed=0)
    assert np.array_equal(
        partitioner.partition_array(csr, 2), partitioner.partition_array(positive, 2)
    )


# ----------------------------------------------------------------------
# Trivial baselines and adapters
# ----------------------------------------------------------------------
def test_hash_modulo_random_arrays_match_dict():
    graph, csr = _random_graph(300, 600, seed=1)
    for partitioner in (HashPartitioner(), ModuloPartitioner(), RandomPartitioner(seed=3)):
        reference = _dense_reference(dict(partitioner.partition(graph, 7)), csr)
        assert np.array_equal(reference, partitioner.partition_array(csr, 7)), (
            partitioner.name
        )


def test_metis_partition_array_uses_canonical_fallback():
    _, csr = _random_graph(200, 800, seed=2)
    labels = MetisLikePartitioner(seed=0).partition_array(csr, 4)
    assert labels.shape == (200,)
    assert labels.min() >= 0 and labels.max() < 4


def test_partition_array_maps_sparse_original_ids():
    # CSR graphs densify sparse ids; the kernels must stream and report
    # assignments keyed consistently with the dictionary path.
    graph = UndirectedGraph()
    ids = [3, 8, 21, 34, 55, 89, 144, 233]
    for vertex in ids:
        graph.add_vertex(vertex)
    for a, b in zip(ids, ids[1:]):
        graph.add_edge(a, b)
    graph.add_edge(ids[0], ids[-1], weight=2)
    csr = CSRGraph.from_undirected(graph)
    for partitioner in (
        LinearDeterministicGreedy(stream_order="random", seed=2),
        FennelPartitioner(seed=2),
        WangPartitioner(seed=2),
    ):
        reference = _dense_reference(dict(partitioner.partition(graph, 3)), csr)
        assert np.array_equal(reference, partitioner.partition_array(csr, 3)), (
            partitioner.name
        )
        # partition() on the CSR graph reports original ids.
        assignment = partitioner.partition(csr, 3)
        assert set(assignment) == set(ids)


# ----------------------------------------------------------------------
# Registry plumbing (satellite)
# ----------------------------------------------------------------------
def test_registry_forwards_stream_order_and_seed():
    ldg = make_partitioner("ldg", stream_order="bfs", seed=17)
    assert ldg.stream_order == "bfs" and ldg.seed == 17
    fennel = make_partitioner("fennel", stream_order="natural", seed=23)
    assert fennel.stream_order == "natural" and fennel.seed == 23
    graph, csr = _random_graph(200, 600, seed=4)
    for order in ("natural", "random"):
        a = make_partitioner("ldg", stream_order=order, seed=5)
        b = make_partitioner("ldg", stream_order=order, seed=5)
        assert dict(a.partition(graph, 4)) == b.partition(csr, 4)
