"""Serving data-plane pins: dense snapshots, scalar hashing, pipelining.

The PR-10 throughput overhaul must be invisible at the semantics level;
this suite pins that contract:

* the scalar :func:`~repro.partitioners.hashing.hash_label` equals the
  vectorized :func:`~repro.partitioners.hashing.hash_labels_array`
  elementwise across a fuzzed id range (0, small, and >= 2**62 ids) and
  rejects negative ids;
* the dense direct-index snapshot representation is byte-identical to
  the ``searchsorted`` path on a randomized matrix of snapshot shapes
  (contiguous, offset-contiguous, gapped, empty, single-id) × query
  batches (hit/miss/mixed/empty/duplicated);
* ``lookup_many`` does *no* fallback hashing on a full-hit batch;
* the pipelined batch protocol answers byte-identically and in order to
  the per-request protocol under interleaved lookup/ingest/version ops;
* the new metrics (sampled preallocated latency reservoir, pipeline
  depth gauges) and the new config/CLI knobs validate like the rest.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import SpinnerConfig
from repro.errors import ServingError
from repro.graph.generators import powerlaw_cluster
from repro.partitioners.hashing import hash_label, hash_labels_array
from repro.serving import (
    AssignmentSnapshot,
    ServingConfig,
    ServingMetrics,
    ShardingService,
    send_requests,
)
import repro.serving.store as store_module


# ----------------------------------------------------------------------
# scalar splitmix64 helper
# ----------------------------------------------------------------------
def test_hash_label_matches_array_twin_fuzzed():
    rng = np.random.default_rng(11)
    pinned = [0, 1, 2, 63, 2**31, 2**62, 2**62 + 12345, 2**63 - 1]
    fuzzed = rng.integers(0, 2**63 - 1, size=500, dtype=np.int64).tolist()
    ids = np.asarray(pinned + fuzzed, dtype=np.int64)
    for k in (1, 2, 7, 8, 1024):
        expected = hash_labels_array(ids, k)
        for vertex, label in zip(ids.tolist(), expected.tolist()):
            assert hash_label(vertex, k) == label


def test_hash_label_rejects_negative_ids():
    for vertex in (-1, -(2**40), -(2**63)):
        with pytest.raises(ValueError):
            hash_label(vertex, 8)


def test_snapshot_miss_paths_reject_negative_ids():
    snapshot = AssignmentSnapshot(
        1, np.arange(4, dtype=np.int64), np.zeros(4, dtype=np.int64), 4
    )
    with pytest.raises(ValueError):
        snapshot.lookup(-3)
    with pytest.raises(ServingError):
        snapshot.lookup_many(np.asarray([0, -3], dtype=np.int64))


# ----------------------------------------------------------------------
# dense fast path: randomized equivalence vs the searchsorted path
# ----------------------------------------------------------------------
def _snapshot_cases(rng):
    """(name, ids) matrix: every physical shape the store distinguishes."""
    n = int(rng.integers(8, 64))
    base = int(rng.integers(1, 10_000))
    gapped = np.unique(rng.integers(0, 4 * n, size=n).astype(np.int64))
    return [
        ("contiguous", np.arange(n, dtype=np.int64)),
        ("offset-contiguous", np.arange(base, base + n, dtype=np.int64)),
        ("gapped", gapped),
        ("empty", np.empty(0, dtype=np.int64)),
        ("single", np.asarray([base], dtype=np.int64)),
    ]


def _query_cases(rng, ids):
    """Hit / miss / mixed / empty / duplicated query batches for ``ids``."""
    universe = int(ids.max()) + 50 if ids.size else 100
    mixed = rng.integers(0, universe, size=24).astype(np.int64)
    cases = [
        ("mixed", mixed),
        ("empty", np.empty(0, dtype=np.int64)),
        ("far-miss", np.asarray([universe + 10**9, 2**62], dtype=np.int64)),
        ("duplicates", np.repeat(mixed[:6], 3)),
    ]
    if ids.size:
        cases.append(("all-hit", rng.choice(ids, size=16)))
    return cases


def test_dense_path_detection():
    make = lambda ids: AssignmentSnapshot(
        1, ids, np.zeros(len(ids), dtype=np.int64), 4
    )
    assert make(np.arange(5, dtype=np.int64)).is_dense
    assert make(np.arange(7, 12, dtype=np.int64)).is_dense
    assert make(np.asarray([42], dtype=np.int64)).is_dense
    assert not make(np.asarray([0, 1, 3], dtype=np.int64)).is_dense
    assert not make(np.empty(0, dtype=np.int64)).is_dense


def test_dense_lookup_byte_identical_to_searchsorted_fuzzed():
    rng = np.random.default_rng(29)
    for trial in range(20):
        for name, ids in _snapshot_cases(rng):
            labels = rng.integers(0, 8, size=ids.size).astype(np.int64)
            snapshot = AssignmentSnapshot(1, ids, labels, 8)
            for query_name, query in _query_cases(rng, ids):
                got_labels, got_miss = snapshot.lookup_many(query)
                # Force the searchsorted reference path on the same object.
                snapshot._dense_base = None
                ref_labels, ref_miss = snapshot.lookup_many(query)
                if ids.size and int(ids[0]) + ids.size - 1 == int(ids[-1]):
                    snapshot._dense_base = int(ids[0])
                context = f"trial={trial} snapshot={name} query={query_name}"
                assert got_labels.dtype == ref_labels.dtype == np.int64, context
                assert got_labels.tobytes() == ref_labels.tobytes(), context
                assert got_miss.tobytes() == ref_miss.tobytes(), context
                # Scalar lookup agrees elementwise with the batched answer.
                for vertex, label, missed in zip(
                    query.tolist(), got_labels.tolist(), got_miss.tolist()
                ):
                    assert snapshot.lookup(vertex) == (label, missed), context


def test_lookup_many_full_hit_does_no_fallback_work(monkeypatch):
    ids = np.arange(100, 200, dtype=np.int64)
    labels = np.arange(100, dtype=np.int64) % 4
    dense = AssignmentSnapshot(1, ids, labels, 4)
    sparse = AssignmentSnapshot(1, ids * 2, labels, 4)

    def _boom(*args, **kwargs):
        raise AssertionError("hash fallback ran on a full-hit batch")

    monkeypatch.setattr(store_module, "hash_labels_array", _boom)
    query = np.asarray([100, 150, 199, 150], dtype=np.int64)
    got, miss = dense.lookup_many(query)
    assert not miss.any() and got.tolist() == [0, 2, 3, 2]
    got, miss = sparse.lookup_many(query * 2)
    assert not miss.any() and got.tolist() == [0, 2, 3, 2]
    # A miss still routes through the (patched) fallback.
    with pytest.raises(AssertionError):
        dense.lookup_many(np.asarray([99], dtype=np.int64))


# ----------------------------------------------------------------------
# pipelined protocol: byte-identical, in-order vs per-request mode
# ----------------------------------------------------------------------
def _make_service(seed=23):
    graph = powerlaw_cluster(
        300, edges_per_vertex=5, triangle_probability=0.4, seed=seed
    )
    config = ServingConfig(
        num_partitions=4,
        edge_threshold=100_000,  # never triggers: responses stay deterministic
        spinner=SpinnerConfig(seed=seed),
        log_interval=0.0,
    )
    return ShardingService(graph, config)


def _start(service):
    ready = threading.Event()
    bound = {}

    def on_ready(started):
        bound["port"] = started.port
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve_forever(ready=on_ready)),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=30)
    return thread, bound["port"]


def _raw_exchange(port, lines, pipeline):
    """Send raw request lines; return the raw response lines."""
    responses = []
    with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
        reader = conn.makefile("rb")
        if pipeline:
            conn.sendall(b"".join(lines))
            for _ in lines:
                responses.append(reader.readline())
        else:
            for line in lines:
                conn.sendall(line)
                responses.append(reader.readline())
    return responses


_INTERLEAVED_OPS = [
    {"op": "lookup", "vertex": 0},
    {"op": "lookup", "vertex": 1},
    {"op": "lookup", "vertex": 2},  # a fusable run of three
    {"op": "version"},
    {"op": "lookup", "vertex": 10**9},  # single fallback between other ops
    {"op": "ingest", "edges": [[0, 10**6], [1, 10**6 + 1, 3]], "vertices": [10**6]},
    {"op": "lookup", "vertex": 10**6},  # now covered? no — hash fallback
    {"op": "lookup", "vertices": [0, 1, 10**9]},
    {"op": "lookup_batch", "vertices": [2, 3, 4]},
    {"op": "lookup"},  # error: neither vertex nor vertices
    {"op": "lookup_batch"},  # error: vertices required
    {"op": "nonsense"},
    {"op": "lookup", "vertex": 5},
    {"op": "lookup", "vertex": -7},  # error inside a would-be fused run
    {"op": "lookup", "vertex": 6},
    {"op": "version"},
]


def _interleaved_lines():
    lines = [json.dumps(payload).encode("utf-8") + b"\n" for payload in _INTERLEAVED_OPS]
    lines.insert(4, b"this is not json\n")  # malformed line mid-stream
    return lines


def test_pipelined_responses_byte_identical_to_per_request():
    lines = _interleaved_lines()
    results = {}
    for mode in ("per_request", "pipelined"):
        service = _make_service(seed=23)  # fresh identical state per mode
        thread, port = _start(service)
        try:
            results[mode] = _raw_exchange(port, lines, pipeline=(mode == "pipelined"))
        finally:
            send_requests("127.0.0.1", port, [{"op": "shutdown"}])
            thread.join(timeout=30)
    assert len(results["pipelined"]) == len(lines)
    assert results["pipelined"] == results["per_request"]
    # Sanity: the run actually exercised successes and failures.
    decoded = [json.loads(line) for line in results["pipelined"]]
    assert any(r.get("ok") for r in decoded)
    assert any(not r.get("ok") for r in decoded)


def test_pipelined_shutdown_mid_batch_stops_processing():
    service = _make_service(seed=31)
    thread, port = _start(service)
    lines = [
        json.dumps({"op": "version"}).encode() + b"\n",
        json.dumps({"op": "shutdown"}).encode() + b"\n",
        json.dumps({"op": "version"}).encode() + b"\n",  # never answered
    ]
    with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
        reader = conn.makefile("rb")
        conn.sendall(b"".join(lines))
        first = json.loads(reader.readline())
        second = json.loads(reader.readline())
        third = reader.readline()
    assert first == {"ok": True, "version": 1}
    assert second["ok"]
    assert third == b""  # connection closed, the third request was dropped
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_lookup_batch_op_matches_batched_lookup():
    service = _make_service(seed=37)
    thread, port = _start(service)
    try:
        legacy, explicit = send_requests(
            "127.0.0.1",
            port,
            [
                {"op": "lookup", "vertices": [0, 5, 10**9]},
                {"op": "lookup_batch", "vertices": [0, 5, 10**9]},
            ],
            pipeline=True,
        )
        assert explicit == legacy
        assert explicit["ok"] and explicit["fallbacks"] == [2]
    finally:
        send_requests("127.0.0.1", port, [{"op": "shutdown"}])
        thread.join(timeout=30)


def test_pipeline_depth_is_surfaced_in_stats():
    service = _make_service(seed=41)
    thread, port = _start(service)
    try:
        send_requests(
            "127.0.0.1",
            port,
            [{"op": "lookup", "vertex": i} for i in range(8)],
            pipeline=True,
        )
        (response,) = send_requests("127.0.0.1", port, [{"op": "stats"}])
        stats = response["stats"]
        assert stats["pipeline_depth_max"] >= 2.0  # the burst was batched
        assert stats["pipeline_batches"] >= 1
        assert stats["pipeline_requests"] >= 8
        assert stats["pipeline_depth_mean"] > 0.0
        assert stats["latency_sample_every"] == 16
        assert stats["lookups_total"] >= 8
    finally:
        send_requests("127.0.0.1", port, [{"op": "shutdown"}])
        thread.join(timeout=30)


# ----------------------------------------------------------------------
# metrics: sampled preallocated reservoir
# ----------------------------------------------------------------------
def test_metrics_latency_sampling_one_in_n():
    metrics = ServingMetrics(sample_every=4)
    for _ in range(16):
        metrics.observe_lookup(1, 0, 0.5)
    assert metrics._latency_filled == 4  # 16 requests, stride 4
    assert metrics.counters["lookups_total"] == 16
    quantiles = metrics.latency_quantiles()
    assert quantiles["latency_p50_s"] == pytest.approx(0.5)


def test_metrics_batch_observation_samples_once_per_stride():
    metrics = ServingMetrics(sample_every=8)
    metrics.observe_lookup_batch(8, 8, 2, 0.8)  # crosses one stride boundary
    assert metrics._latency_filled == 1
    assert metrics._latency_ring[0] == pytest.approx(0.1)  # per-request estimate
    assert metrics.counters["lookups_total"] == 8
    assert metrics.counters["fallback_lookups"] == 2
    metrics.observe_lookup_batch(3, 3, 0, 0.3)  # starts on a stride hit: samples
    assert metrics._latency_filled == 2
    metrics.observe_lookup_batch(3, 3, 0, 0.3)  # strictly inside: no sample
    assert metrics._latency_filled == 2


def test_metrics_reservoir_is_bounded():
    from repro.serving.metrics import LATENCY_RESERVOIR

    metrics = ServingMetrics(sample_every=1)
    for index in range(LATENCY_RESERVOIR + 100):
        metrics.observe_lookup(1, 0, float(index))
    assert metrics._latency_filled == LATENCY_RESERVOIR
    assert len(metrics._latency_ring) == LATENCY_RESERVOIR


def test_metrics_rejects_bad_sample_stride():
    with pytest.raises(ServingError):
        ServingMetrics(sample_every=0)


# ----------------------------------------------------------------------
# config / CLI validation for the new knobs
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_partitions": 4, "latency_sample_every": 0},
        {"num_partitions": 4, "max_pipeline_batch": 0},
    ],
)
def test_serving_config_rejects_bad_dataplane_knobs(kwargs):
    with pytest.raises(ServingError):
        ServingConfig(**kwargs)


@pytest.mark.parametrize(
    "argv",
    [
        ["serve", "--dataset", "TU", "-k", "4", "--latency-sample-every", "0"],
        ["serve", "--dataset", "TU", "-k", "4", "--max-pipeline", "0"],
    ],
)
def test_serve_cli_rejects_bad_dataplane_knobs(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
