"""Tests for the dataset proxies (Table II substitutes)."""

import pytest

from repro.graph.datasets import (
    DATASET_SPECS,
    dataset_names,
    load_dataset,
)
from repro.graph.digraph import DiGraph
from repro.graph.stats import degree_stats
from repro.graph.undirected import UndirectedGraph


def test_dataset_names_match_specs():
    assert set(dataset_names()) == set(DATASET_SPECS)


@pytest.mark.parametrize("name", dataset_names())
def test_directedness_matches_table2(name):
    graph = load_dataset(name, scale=0.03)
    if DATASET_SPECS[name].directed:
        assert isinstance(graph, DiGraph)
    else:
        assert isinstance(graph, UndirectedGraph)


def test_scale_controls_size():
    small = load_dataset("TU", scale=0.03)
    large = load_dataset("TU", scale=0.08)
    assert large.num_vertices > small.num_vertices


def test_twitter_proxy_is_hub_dominated():
    graph = load_dataset("TW", scale=0.1)
    stats = degree_stats(graph)
    assert stats.hub_ratio > 3.0


def test_yahoo_proxy_is_sparse():
    yahoo = load_dataset("Y!", scale=0.05)
    tuenti = load_dataset("TU", scale=0.05)
    yahoo_stats = degree_stats(yahoo)
    tuenti_stats = degree_stats(tuenti)
    assert yahoo_stats.mean < tuenti_stats.mean


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        load_dataset("nope")


def test_seed_override_changes_graph():
    first = load_dataset("TU", scale=0.03, seed=1)
    second = load_dataset("TU", scale=0.03, seed=2)
    assert sorted(first.edges()) != sorted(second.edges())


def test_deterministic_default_seed():
    first = load_dataset("FR", scale=0.03)
    second = load_dataset("FR", scale=0.03)
    assert first.num_edges == second.num_edges
