"""Tests for the vectorized Spinner implementation."""

import numpy as np
import pytest

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.errors import InvalidPartitionCountError, PartitioningError
from repro.graph.csr import CSRGraph
from repro.metrics.quality import locality, max_normalized_load
from repro.partitioners.hashing import HashPartitioner


def test_partition_returns_valid_labels(community_graph, quick_config):
    result = FastSpinner(quick_config).partition(community_graph, 4)
    labels = result.labels
    assert labels.shape[0] == community_graph.num_vertices
    assert labels.min() >= 0 and labels.max() < 4
    assignment = result.to_assignment()
    assert set(assignment) == set(community_graph.vertices())


def test_quality_beats_hash_partitioning(community_graph, quick_config):
    spinner = FastSpinner(quick_config).partition(community_graph, 4)
    hash_assignment = HashPartitioner().partition(community_graph, 4)
    assert spinner.phi > locality(community_graph, hash_assignment)


def test_balance_close_to_capacity_bound(community_graph, quick_config):
    result = FastSpinner(quick_config).partition(community_graph, 4)
    # rho <= c holds with high probability; allow granularity slack on a
    # small graph (single hubs are a visible fraction of a partition).
    assert result.rho <= quick_config.additional_capacity + 0.15


def test_two_cliques_are_separated(two_cliques):
    # On a 10-vertex graph the paper's default c = 1.05 leaves a capacity
    # slack smaller than a single vertex degree, which can freeze migrations
    # (exactly the granularity effect Proposition 3's bound depends on), so
    # the toy graph uses a proportionally larger slack.
    config = SpinnerConfig(seed=1, max_iterations=60, additional_capacity=1.3)
    result = FastSpinner(config).partition(two_cliques, 2)
    # Each clique should end up (almost) entirely in one partition.
    assert result.phi >= 0.85


def test_deterministic_for_fixed_seed(community_graph):
    config = SpinnerConfig(seed=11, max_iterations=30)
    first = FastSpinner(config).partition(community_graph, 4)
    second = FastSpinner(config).partition(community_graph, 4)
    assert np.array_equal(first.labels, second.labels)


def test_history_is_recorded_and_score_improves(community_graph, quick_config):
    result = FastSpinner(quick_config).partition(community_graph, 4, track_history=True)
    assert len(result.history) == result.iterations
    scores = [record.score for record in result.history]
    assert scores[-1] > scores[0]
    phis = [record.phi for record in result.history]
    assert phis[-1] > phis[0]


def test_history_can_be_disabled(community_graph, quick_config):
    result = FastSpinner(quick_config).partition(community_graph, 4, track_history=False)
    assert result.history == []


def test_initial_labels_mapping_and_array(community_graph, quick_config):
    spinner = FastSpinner(quick_config)
    csr = CSRGraph.from_undirected(community_graph)
    array_init = np.zeros(csr.num_vertices, dtype=np.int64)
    result = spinner.partition(csr, 2, initial_labels=array_init)
    assert result.labels.max() <= 1
    mapping_init = {v: 0 for v in community_graph.vertices()}
    result2 = spinner.partition(community_graph, 2, initial_labels=mapping_init)
    assert result2.labels.shape[0] == community_graph.num_vertices


def test_invalid_inputs_rejected(community_graph, quick_config):
    spinner = FastSpinner(quick_config)
    with pytest.raises(InvalidPartitionCountError):
        spinner.partition(community_graph, 0)
    with pytest.raises(PartitioningError):
        spinner.partition(community_graph, 2, initial_labels={0: 0})  # incomplete
    with pytest.raises(PartitioningError):
        spinner.partition(
            community_graph,
            2,
            initial_labels=np.full(community_graph.num_vertices, 7),
        )


def test_directed_input_uses_weighted_conversion(tiny_twitter, quick_config):
    result = FastSpinner(quick_config).partition(tiny_twitter, 4)
    assert 0.0 <= result.phi <= 1.0
    assert result.labels.shape[0] == tiny_twitter.num_vertices


def test_max_iterations_bound(community_graph):
    config = SpinnerConfig(seed=1, max_iterations=3, halt_window=50)
    result = FastSpinner(config).partition(community_graph, 4)
    assert result.iterations == 3
    assert result.halted_by == "max_iterations"


def test_halts_in_steady_state(community_graph):
    config = SpinnerConfig(seed=1, max_iterations=150)
    result = FastSpinner(config).partition(community_graph, 4)
    assert result.iterations < 150
    assert result.halted_by == "steady_state"


def test_message_counter_grows_with_migrations(community_graph, quick_config):
    result = FastSpinner(quick_config).partition(community_graph, 4)
    # At least the initialization messages are counted.
    assert result.total_messages >= 2 * community_graph.num_edges
