"""Tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    powerlaw_cluster,
    ring_lattice,
    to_directed_reciprocal,
    watts_strogatz,
)
from repro.graph.stats import degree_stats, reciprocity


def test_ring_lattice_is_regular():
    graph = ring_lattice(20, degree=4)
    assert graph.num_vertices == 20
    assert graph.num_edges == 40
    assert all(graph.degree(v) == 4 for v in graph.vertices())


def test_ring_lattice_rejects_odd_degree():
    with pytest.raises(GraphError):
        ring_lattice(10, degree=3)


def test_watts_strogatz_preserves_edge_count():
    graph = watts_strogatz(100, degree=6, beta=0.3, seed=1)
    assert graph.num_vertices == 100
    assert graph.num_edges == 300


def test_watts_strogatz_beta_zero_is_lattice():
    lattice = ring_lattice(50, degree=4)
    graph = watts_strogatz(50, degree=4, beta=0.0, seed=1)
    assert sorted(graph.edges()) == sorted(lattice.edges())


def test_watts_strogatz_rejects_bad_beta():
    with pytest.raises(GraphError):
        watts_strogatz(50, degree=4, beta=1.5)


def test_watts_strogatz_deterministic_for_seed():
    first = watts_strogatz(80, degree=6, beta=0.5, seed=42)
    second = watts_strogatz(80, degree=6, beta=0.5, seed=42)
    assert sorted(first.edges()) == sorted(second.edges())


def test_erdos_renyi_size():
    graph = erdos_renyi(100, 300, seed=2)
    assert graph.num_vertices == 100
    assert graph.num_edges <= 300
    assert graph.num_edges >= 250  # a few collisions are possible


def test_barabasi_albert_has_hubs():
    graph = barabasi_albert(500, edges_per_vertex=5, seed=3)
    stats = degree_stats(graph)
    assert stats.maximum > 4 * stats.mean  # hub-dominated


def test_barabasi_albert_directed_variant():
    graph = barabasi_albert(200, edges_per_vertex=4, seed=3, directed=True)
    assert isinstance(graph, DiGraph)
    assert graph.num_edges >= 4 * (200 - 4)


def test_barabasi_albert_rejects_small_n():
    with pytest.raises(GraphError):
        barabasi_albert(3, edges_per_vertex=5)


def test_powerlaw_cluster_has_clustering():
    from repro.graph.stats import average_clustering

    clustered = powerlaw_cluster(400, edges_per_vertex=5, triangle_probability=0.8, seed=4)
    plain = barabasi_albert(400, edges_per_vertex=5, seed=4)
    assert average_clustering(clustered, seed=0) > average_clustering(plain, seed=0)


def test_to_directed_reciprocal_controls_reciprocity():
    base = powerlaw_cluster(300, edges_per_vertex=5, triangle_probability=0.3, seed=5)
    high = to_directed_reciprocal(base, reciprocity=0.9, seed=1)
    low = to_directed_reciprocal(base, reciprocity=0.1, seed=1)
    assert reciprocity(high) > reciprocity(low)
