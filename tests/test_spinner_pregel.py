"""Tests for the faithful Pregel implementation of Spinner."""

import pytest

from repro.core.config import SpinnerConfig
from repro.core.program import (
    COMPUTE_MIGRATIONS,
    COMPUTE_SCORES,
    INITIALIZE,
    NEIGHBOR_DISCOVERY,
    NEIGHBOR_PROPAGATION,
    SpinnerProgram,
)
from repro.core.spinner import SpinnerPartitioner
from repro.errors import PartitioningError
from repro.graph.conversion import to_weighted_undirected
from repro.metrics.quality import locality
from repro.partitioners.hashing import HashPartitioner


def test_phase_schedule_with_conversion():
    program = SpinnerProgram(4, SpinnerConfig(), convert_directed=True)
    assert program.phase(0) == NEIGHBOR_PROPAGATION
    assert program.phase(1) == NEIGHBOR_DISCOVERY
    assert program.phase(2) == INITIALIZE
    assert program.phase(3) == COMPUTE_SCORES
    assert program.phase(4) == COMPUTE_MIGRATIONS
    assert program.phase(5) == COMPUTE_SCORES
    assert program.iteration_of(3) == 0
    assert program.iteration_of(5) == 1


def test_phase_schedule_without_conversion():
    program = SpinnerProgram(4, SpinnerConfig(), convert_directed=False)
    assert program.phase(0) == INITIALIZE
    assert program.phase(1) == COMPUTE_SCORES
    assert program.phase(2) == COMPUTE_MIGRATIONS


def test_partition_undirected_graph(two_cliques, quick_config):
    partitioner = SpinnerPartitioner(quick_config, num_workers=2)
    result = partitioner.partition(two_cliques, 2)
    assert set(result.assignment) == set(two_cliques.vertices())
    assert result.phi >= 0.85
    assert result.iterations >= 1
    assert len(result.history) == result.iterations


def test_partition_directed_graph_runs_conversion(small_directed, quick_config):
    partitioner = SpinnerPartitioner(quick_config, num_workers=2)
    result = partitioner.partition(small_directed, 2)
    undirected = to_weighted_undirected(small_directed)
    assert result.phi == pytest.approx(locality(undirected, result.assignment))


def test_pregel_spinner_beats_hash(community_graph, quick_config):
    partitioner = SpinnerPartitioner(quick_config, num_workers=4)
    result = partitioner.partition(community_graph, 4)
    hash_phi = locality(community_graph, HashPartitioner().partition(community_graph, 4))
    assert result.phi > hash_phi


def test_initial_assignment_is_respected(two_cliques):
    config = SpinnerConfig(seed=1, max_iterations=1, halt_window=1)
    partitioner = SpinnerPartitioner(config, num_workers=2)
    initial = {v: 0 if v < 5 else 1 for v in two_cliques.vertices()}
    result = partitioner.partition(two_cliques, 2, initial_assignment=initial)
    # Starting from the optimum, one bounded iteration should not destroy it.
    assert result.phi >= 0.85


def test_incomplete_initial_assignment_rejected(two_cliques, quick_config):
    partitioner = SpinnerPartitioner(quick_config)
    with pytest.raises(PartitioningError):
        partitioner.partition(two_cliques, 2, initial_assignment={0: 0})


def test_history_metrics_track_partitioning_state(community_graph, quick_config):
    partitioner = SpinnerPartitioner(quick_config, num_workers=4)
    result = partitioner.partition(community_graph, 4)
    assert result.history[-1].phi == pytest.approx(result.phi, abs=0.1)
    scores = [record.score for record in result.history]
    assert scores[-1] >= scores[0]


def test_simulated_time_and_messages_positive(two_cliques, quick_config):
    partitioner = SpinnerPartitioner(quick_config, num_workers=2)
    result = partitioner.partition(two_cliques, 2)
    assert result.total_messages > 0
    assert result.simulated_time() > 0


def test_worker_local_updates_toggle(community_graph):
    base = SpinnerConfig(seed=5, max_iterations=25)
    with_async = SpinnerPartitioner(base, num_workers=4).partition(community_graph, 4)
    without_async = SpinnerPartitioner(
        base.with_options(worker_local_updates=False), num_workers=4
    ).partition(community_graph, 4)
    # Both must produce valid, reasonable partitionings.
    assert with_async.phi > 0.2
    assert without_async.phi > 0.2
