"""Tests for the CSR graph view."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.undirected import UndirectedGraph


def test_from_undirected_roundtrip(two_cliques):
    csr = CSRGraph.from_undirected(two_cliques)
    assert csr.num_vertices == two_cliques.num_vertices
    assert csr.num_edges == two_cliques.num_edges
    back = csr.to_undirected()
    assert back.num_edges == two_cliques.num_edges
    assert back.total_weight == two_cliques.total_weight


def test_weighted_degrees_match(two_cliques):
    csr = CSRGraph.from_undirected(two_cliques)
    for dense, original in enumerate(csr.original_ids):
        assert csr.weighted_degree(dense) == two_cliques.weighted_degree(int(original))
        assert csr.degree(dense) == two_cliques.degree(int(original))


def test_edge_array_has_both_directions(triangle_graph):
    csr = CSRGraph.from_undirected(triangle_graph)
    sources, targets, weights = csr.edge_array()
    assert sources.shape[0] == 2 * triangle_graph.num_edges
    assert weights.sum() == 2 * triangle_graph.total_weight
    pairs = set(zip(sources.tolist(), targets.tolist()))
    assert (0, 1) in pairs and (1, 0) in pairs


def test_original_ids_for_non_contiguous_vertices():
    graph = UndirectedGraph.from_edges([(10, 20), (20, 30)])
    csr = CSRGraph.from_undirected(graph)
    assert list(csr.original_ids) == [10, 20, 30]
    assert csr.degree(1) == 2  # vertex 20


def test_from_edge_list():
    csr = CSRGraph.from_edge_list([(0, 1), (1, 2)], num_vertices=4)
    assert csr.num_vertices == 4
    assert csr.num_edges == 2
    assert csr.degree(3) == 0
    assert csr.weighted_degree(1) == 2


def test_from_edge_list_with_weights():
    csr = CSRGraph.from_edge_list([(0, 1)], num_vertices=2, weights=[5])
    assert csr.weighted_degree(0) == 5
    assert csr.total_weight == 5


def test_invalid_edge_list_shape_rejected():
    with pytest.raises(GraphError):
        CSRGraph.from_edge_list(np.zeros((2, 3)), num_vertices=3)


def test_neighbors_and_weights(triangle_graph):
    csr = CSRGraph.from_undirected(triangle_graph)
    neighbours = set(csr.neighbors(0).tolist())
    assert neighbours == {1, 2}
    assert csr.neighbor_weights(0).tolist() == [1, 1]


def test_empty_edge_list():
    csr = CSRGraph.from_edge_list([], num_vertices=3)
    assert csr.num_edges == 0
    assert csr.total_weight == 0
    assert csr.weighted_degrees.tolist() == [0, 0, 0]
