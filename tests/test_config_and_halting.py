"""Tests for SpinnerConfig and the halting heuristic."""

import pytest

from repro.core.config import SpinnerConfig
from repro.core.halting import HaltingTracker
from repro.errors import ConfigurationError


def test_default_config_matches_paper():
    config = SpinnerConfig()
    assert config.additional_capacity == pytest.approx(1.05)
    assert config.halt_threshold == pytest.approx(0.001)
    assert config.halt_window == 5


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SpinnerConfig(additional_capacity=1.0)
    with pytest.raises(ConfigurationError):
        SpinnerConfig(halt_threshold=-0.1)
    with pytest.raises(ConfigurationError):
        SpinnerConfig(halt_window=0)
    with pytest.raises(ConfigurationError):
        SpinnerConfig(max_iterations=0)


def test_with_options_returns_modified_copy():
    config = SpinnerConfig()
    other = config.with_options(additional_capacity=1.2, seed=9)
    assert other.additional_capacity == 1.2
    assert other.seed == 9
    assert config.additional_capacity == 1.05  # original untouched


def test_capacity_formula():
    config = SpinnerConfig(additional_capacity=1.1)
    assert config.capacity(total_load=1000, num_partitions=10) == pytest.approx(110.0)
    with pytest.raises(ConfigurationError):
        config.capacity(100, 0)


def test_halting_requires_window_of_stale_iterations():
    tracker = HaltingTracker(threshold=0.01, window=3)
    assert not tracker.update(100.0)
    # Big improvements keep resetting the stale counter.
    assert not tracker.update(150.0)
    assert not tracker.update(151.0)  # < 1% improvement -> stale 1
    assert not tracker.update(151.2)  # stale 2
    assert tracker.update(151.3)  # stale 3 -> halt
    assert tracker.stale_iterations == 3


def test_halting_resets_on_improvement():
    tracker = HaltingTracker(threshold=0.01, window=2)
    tracker.update(10.0)
    tracker.update(10.0)  # stale 1
    tracker.update(20.0)  # improvement resets
    assert tracker.stale_iterations == 0
    assert not tracker.update(20.0)
    assert tracker.update(20.0)


def test_halting_with_negative_scores():
    tracker = HaltingTracker(threshold=0.001, window=2)
    tracker.update(-500.0)
    tracker.update(-100.0)  # large improvement
    assert tracker.stale_iterations == 0


def test_halting_reset():
    tracker = HaltingTracker(window=1)
    tracker.update(1.0)
    tracker.update(1.0)
    tracker.reset()
    assert tracker.history == []
    assert not tracker.update(1.0)
