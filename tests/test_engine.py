"""Tests for the simulated Pregel engine and the sample applications."""

import math

import pytest

from repro.apps.degree import DegreeCount
from repro.apps.pagerank import PageRank, TOTAL_RANK_AGGREGATOR
from repro.apps.sssp import ShortestPaths
from repro.apps.wcc import WeaklyConnectedComponents
from repro.errors import PregelError
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.pregel.cost_model import ClusterCostModel
from repro.pregel.engine import PregelEngine
from repro.pregel.master import MasterCompute
from repro.pregel.program import VertexProgram


def line_graph(n=6):
    return UndirectedGraph.from_edges([(i, i + 1) for i in range(n - 1)])


def test_engine_rejects_bad_arguments():
    with pytest.raises(PregelError):
        PregelEngine(num_workers=0)
    with pytest.raises(PregelError):
        PregelEngine(max_supersteps=0)


def test_degree_count_on_digraph():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
    engine = PregelEngine(num_workers=2)
    result = engine.run_on_digraph(DegreeCount(), graph)
    values = result.vertex_values()
    # in+out degree: vertex 2 has two incoming edges and none outgoing.
    assert values[0] == 2
    assert values[1] == 2
    assert values[2] == 2
    assert result.halt_reason == "converged"


def test_sssp_distances_on_line():
    graph = line_graph(6)
    engine = PregelEngine(num_workers=3)
    result = engine.run_on_undirected(ShortestPaths(source=0), graph)
    values = result.vertex_values()
    assert values == {i: float(i) for i in range(6)}


def test_sssp_unreachable_vertices_stay_infinite():
    graph = UndirectedGraph.from_edges([(0, 1)], num_vertices=3)
    engine = PregelEngine(num_workers=2)
    result = engine.run_on_undirected(ShortestPaths(source=0), graph)
    assert result.vertex_values()[2] == math.inf


def test_wcc_labels_components():
    graph = UndirectedGraph.from_edges([(0, 1), (1, 2), (5, 6)], num_vertices=8)
    engine = PregelEngine(num_workers=2)
    result = engine.run_on_undirected(WeaklyConnectedComponents(), graph)
    values = result.vertex_values()
    assert values[0] == values[1] == values[2] == 0
    assert values[5] == values[6] == 5
    assert values[7] == 7


def test_pagerank_total_mass_is_conserved():
    graph = UndirectedGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    engine = PregelEngine(num_workers=2)
    result = engine.run_on_undirected(PageRank(num_iterations=15), graph)
    total = sum(result.vertex_values().values())
    assert total == pytest.approx(graph.num_vertices, rel=0.05)
    assert result.aggregators.value(TOTAL_RANK_AGGREGATOR) == pytest.approx(total)


def test_max_supersteps_halts_runaway_program():
    class Chatterbox(VertexProgram):
        def compute(self, vertex, messages, ctx):
            ctx.send_message(vertex.vertex_id, "again")

    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = PregelEngine(num_workers=1, max_supersteps=5)
    result = engine.run_on_undirected(Chatterbox(), graph)
    assert result.num_supersteps == 5
    assert result.halt_reason == "max_supersteps"


def test_master_can_halt_computation():
    class HaltAtTwo(MasterCompute):
        def compute(self, superstep, aggregators):
            if superstep == 2:
                self.halt_computation()

    class Chatterbox(VertexProgram):
        def compute(self, vertex, messages, ctx):
            ctx.send_message(vertex.vertex_id, "again")

    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = PregelEngine(num_workers=1, max_supersteps=50)
    result = engine.run_on_undirected(Chatterbox(), graph, master=HaltAtTwo())
    assert result.num_supersteps == 2
    assert result.halt_reason == "master_halt"


def test_local_vs_remote_message_accounting():
    # Two vertices on the same worker exchange local messages; placing them
    # on different workers turns the same traffic into remote messages.
    graph = UndirectedGraph.from_edges([(0, 1)])
    same = PregelEngine(num_workers=2, placement=lambda v: 0)
    split = PregelEngine(num_workers=2, placement=lambda v: v % 2)
    result_same = same.run_on_undirected(DegreeCount(), graph)
    result_split = split.run_on_undirected(DegreeCount(), graph)
    assert result_same.stats.remote_messages == 0
    assert result_split.stats.remote_messages == result_split.stats.total_messages
    assert result_same.stats.total_messages == result_split.stats.total_messages


def test_simulated_time_decreases_with_more_workers():
    graph = line_graph(60)
    model = ClusterCostModel(remote_message_cost=0.0, local_message_cost=0.0)
    slow = PregelEngine(num_workers=1, cost_model=model)
    fast = PregelEngine(num_workers=4, cost_model=model)
    time_slow = slow.run_on_undirected(PageRank(5), graph).simulated_time(model)
    time_fast = fast.run_on_undirected(PageRank(5), graph).simulated_time(model)
    assert time_fast < time_slow


def test_aggregator_history_recorded():
    graph = line_graph(5)
    engine = PregelEngine(num_workers=2)
    result = engine.run_on_undirected(PageRank(num_iterations=3), graph)
    history = result.aggregator_history[TOTAL_RANK_AGGREGATOR]
    assert len(history) == result.num_supersteps


class StoreProbe(VertexProgram):
    """Writes a worker-store key only in superstep 0, reads it afterwards."""

    def __init__(self):
        self.leaked_values = []

    def compute(self, vertex, messages, ctx):
        if ctx.superstep == 0:
            ctx.worker_store["superstep0_marker"] = vertex.vertex_id
            ctx.send_message(vertex.vertex_id, 1)
        else:
            self.leaked_values.append(ctx.worker_store.get("superstep0_marker"))
            vertex.vote_to_halt()


def test_shared_store_cleared_before_every_superstep():
    # Regression: the engine never cleared Worker.shared_store, so state
    # written in superstep 0 leaked into every later superstep.
    graph = UndirectedGraph.from_edges([(0, 1), (1, 2)])
    program = StoreProbe()
    PregelEngine(num_workers=2).run_on_undirected(program, graph)
    assert program.leaked_values  # superstep 1 ran
    assert program.leaked_values == [None] * len(program.leaked_values)


class Misroute(VertexProgram):
    """Sends a message to a vertex id that does not exist."""

    def compute(self, vertex, messages, ctx):
        if ctx.superstep == 0:
            ctx.send_message(999, "lost")
        vertex.vote_to_halt()


def test_unknown_message_target_raises_by_default():
    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = PregelEngine(num_workers=2)
    with pytest.raises(PregelError, match="nonexistent"):
        engine.run_on_undirected(Misroute(), graph)


def test_unknown_message_target_dropped_when_opted_in():
    # Regression: silently-kept unknown-target messages defeated the
    # incoming.is_empty() convergence check, costing an extra superstep.
    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = PregelEngine(num_workers=2, drop_unknown_targets=True)
    result = engine.run_on_undirected(Misroute(), graph)
    assert result.stats.messages_dropped == 2  # one per vertex
    assert result.num_supersteps == 1  # no phantom superstep
    assert result.halt_reason == "converged"
    # Unknown targets still count as remote traffic at send time.
    assert result.stats.remote_messages == 2


def test_known_targets_unaffected_by_drop_option():
    graph = UndirectedGraph.from_edges([(0, 1)])
    strict = PregelEngine(num_workers=2)
    lenient = PregelEngine(num_workers=2, drop_unknown_targets=True)
    result_strict = strict.run_on_undirected(DegreeCount(), graph)
    result_lenient = lenient.run_on_undirected(DegreeCount(), graph)
    assert result_strict.vertex_values() == result_lenient.vertex_values()
    assert result_lenient.stats.messages_dropped == 0
