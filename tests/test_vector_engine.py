"""Tests for the array-native vector Pregel engine.

The centerpiece is the equivalence suite: for all four applications, over
directed and undirected generator graphs and under both placements, the
vector engine must reproduce the dictionary engine exactly — final vertex
values, superstep counts, halt reasons, aggregator histories and
per-worker statistics.
"""

import numpy as np
import pytest

from repro.apps import APP_PROGRAMS, make_app_program
from repro.errors import PregelError
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert, watts_strogatz
from repro.graph.undirected import UndirectedGraph
from repro.pregel.engine import PregelEngine
from repro.pregel.master import MasterCompute
from repro.pregel.vector_engine import (
    BatchStep,
    BatchVertexProgram,
    Outbox,
    VectorPregelEngine,
)
from repro.pregel.worker import partition_placement


def _undirected_graph():
    return watts_strogatz(60, 6, 0.3, seed=5)


def _directed_graph():
    return barabasi_albert(50, 3, seed=9, directed=True)


def _placements(num_workers):
    assignment = {v: v // 7 for v in range(200)}
    return {
        "hash": None,
        "partition": partition_placement(assignment, num_workers),
    }


def _program_kwargs(app, directed):
    # In the directed BA graph the initial vertices have no out-edges, so
    # SSSP needs a source that can actually propagate.
    return {
        "degree": {},
        "pagerank": {"num_iterations": 6},
        "sssp": {"source": 10 if directed else 0},
        "wcc": {},
    }[app]


def _run_both(app, graph, directed, placement, num_workers=3):
    dict_engine = PregelEngine(num_workers=num_workers, placement=placement)
    vector_engine = VectorPregelEngine(num_workers=num_workers, placement=placement)
    kwargs = _program_kwargs(app, directed)
    dict_program = make_app_program(app, "dict", **kwargs)
    vector_program = make_app_program(app, "vector", **kwargs)
    if directed:
        dict_result = dict_engine.run_on_digraph(dict_program, graph)
        vector_result = vector_engine.run_on_digraph(vector_program, graph)
    else:
        dict_result = dict_engine.run_on_undirected(dict_program, graph)
        vector_result = vector_engine.run_on_undirected(vector_program, graph)
    return dict_result, vector_result


def _assert_equivalent(dict_result, vector_result):
    assert dict_result.num_supersteps == vector_result.num_supersteps
    assert dict_result.halt_reason == vector_result.halt_reason
    dict_values = dict_result.vertex_values()
    vector_values = vector_result.vertex_values()
    assert set(dict_values) == set(vector_values)
    for vertex_id, value in dict_values.items():
        # == treats 5 and 5.0 as equal and inf == inf holds; PageRank
        # floats must match bit for bit, not approximately.
        assert value == vector_values[vertex_id], vertex_id
    assert dict_result.aggregator_history == vector_result.aggregator_history
    assert dict_result.stats.messages_dropped == vector_result.stats.messages_dropped
    dict_steps = dict_result.stats.superstep_stats
    vector_steps = vector_result.stats.superstep_stats
    assert len(dict_steps) == len(vector_steps)
    for dict_step, vector_step in zip(dict_steps, vector_steps):
        assert dict_step.worker_stats == vector_step.worker_stats, dict_step.superstep


@pytest.mark.parametrize("placement_name", ["hash", "partition"])
@pytest.mark.parametrize("directed", [False, True])
@pytest.mark.parametrize("app", sorted(APP_PROGRAMS))
def test_engines_equivalent_on_generator_graphs(app, directed, placement_name):
    graph = _directed_graph() if directed else _undirected_graph()
    placement = _placements(num_workers=3)[placement_name]
    dict_result, vector_result = _run_both(app, graph, directed, placement)
    assert dict_result.num_supersteps > 1
    _assert_equivalent(dict_result, vector_result)


def test_engines_equivalent_on_csr_input():
    csr = CSRGraph.from_undirected(_undirected_graph())
    dict_engine = PregelEngine(num_workers=4)
    vector_engine = VectorPregelEngine(num_workers=4)
    dict_result = dict_engine.run(
        make_app_program("pagerank", "dict", num_iterations=5),
        PregelEngine.vertices_from_csr(csr),
    )
    vector_result = vector_engine.run_on_csr(
        make_app_program("pagerank", "vector", num_iterations=5), csr
    )
    _assert_equivalent(dict_result, vector_result)
    dict_values = dict_result.vertex_values()
    assert np.array_equal(
        vector_result.values,
        np.array([dict_values[v] for v in vector_result.original_ids.tolist()]),
    )


# ----------------------------------------------------------------------
# vector-engine specific behaviour
# ----------------------------------------------------------------------


def test_vector_engine_rejects_bad_arguments():
    with pytest.raises(PregelError):
        VectorPregelEngine(num_workers=0)
    with pytest.raises(PregelError):
        VectorPregelEngine(max_supersteps=0)


def test_shard_structure_partitions_vertices_and_edges():
    graph = _undirected_graph()
    engine = VectorPregelEngine(num_workers=4)
    shard = engine.shard_undirected(graph)
    seen_vertices = np.concatenate(
        [shard.shard_vertices(w) for w in range(4)]
    )
    assert sorted(seen_vertices.tolist()) == list(range(shard.num_vertices))
    total_slots = 0
    for worker in range(4):
        sources, targets, weights = shard.send_buffer(worker)
        assert (shard.worker_of[sources] == worker).all()
        assert sources.shape == targets.shape == weights.shape
        total_slots += sources.shape[0]
    assert total_slots == 2 * graph.num_edges


class BatchMisroute(BatchVertexProgram):
    """Batch program that sends one message to a nonexistent dense id."""

    combine = "sum"

    def compute_batch(self, shard, messages, ctx):
        if ctx.superstep == 0:
            outbox = Outbox(
                np.array([0], dtype=np.int64),
                np.array([shard.num_vertices + 5], dtype=np.int64),
                np.array([1.0]),
            )
        else:  # pragma: no cover - never reached
            outbox = ctx.no_messages()
        return BatchStep(
            values=ctx.values,
            outbox=outbox,
            votes=np.ones(shard.num_vertices, dtype=bool),
        )


def test_vector_engine_unknown_target_raises_by_default():
    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = VectorPregelEngine(num_workers=2)
    with pytest.raises(PregelError, match="nonexistent"):
        engine.run_on_undirected(BatchMisroute(), graph)


def test_vector_engine_unknown_target_dropped_when_opted_in():
    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = VectorPregelEngine(num_workers=2, drop_unknown_targets=True)
    result = engine.run_on_undirected(BatchMisroute(), graph)
    assert result.stats.messages_dropped == 1
    assert result.num_supersteps == 1
    assert result.halt_reason == "converged"


class BatchChatterbox(BatchVertexProgram):
    """Every vertex messages itself forever."""

    combine = "sum"

    def compute_batch(self, shard, messages, ctx):
        everyone = np.arange(shard.num_vertices, dtype=np.int64)
        outbox = Outbox(everyone, everyone, np.ones(shard.num_vertices))
        return BatchStep(
            values=ctx.values,
            outbox=outbox,
            votes=np.zeros(shard.num_vertices, dtype=bool),
        )


def test_vector_engine_max_supersteps_halts_runaway_program():
    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = VectorPregelEngine(num_workers=1, max_supersteps=5)
    result = engine.run_on_undirected(BatchChatterbox(), graph)
    assert result.num_supersteps == 5
    assert result.halt_reason == "max_supersteps"


def test_vector_engine_master_can_halt():
    class HaltAtTwo(MasterCompute):
        def compute(self, superstep, aggregators):
            if superstep == 2:
                self.halt_computation()

    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = VectorPregelEngine(num_workers=1, max_supersteps=50)
    result = engine.run_on_undirected(BatchChatterbox(), graph, master=HaltAtTwo())
    assert result.num_supersteps == 2
    assert result.halt_reason == "master_halt"


def test_vector_engine_rejects_unknown_combine_mode():
    class BadCombine(BatchVertexProgram):
        combine = "median"

    graph = UndirectedGraph.from_edges([(0, 1)])
    engine = VectorPregelEngine(num_workers=1)
    with pytest.raises(PregelError, match="combine"):
        engine.run_on_undirected(BadCombine(), graph)


def test_vector_engine_simulated_time_matches_dict_engine():
    graph = _undirected_graph()
    dict_result, vector_result = _run_both(
        "pagerank", graph, directed=False, placement=None
    )
    model = dict_result.stats  # same RunStats class on both sides
    assert isinstance(vector_result.stats, type(model))
    from repro.pregel.cost_model import ClusterCostModel

    cost_model = ClusterCostModel()
    assert dict_result.simulated_time(cost_model) == pytest.approx(
        vector_result.simulated_time(cost_model)
    )
