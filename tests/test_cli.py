"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.io import read_partitioning, write_directed_edge_list
from repro.graph.digraph import DiGraph


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["partition", "--dataset", "TU", "-k", "4"])
    assert args.command == "partition"
    args = parser.parse_args(["experiment", "table3"])
    assert args.command == "experiment"


def test_partition_command_writes_assignment(tmp_path, capsys):
    graph = DiGraph.from_edges([(i, (i + 1) % 20) for i in range(20)] + [(i, (i + 2) % 20) for i in range(20)])
    edge_file = tmp_path / "graph.edges"
    write_directed_edge_list(graph, edge_file)
    output_file = tmp_path / "parts.txt"
    code = main(
        [
            "partition",
            "--edge-list",
            str(edge_file),
            "-k",
            "2",
            "--partitioner",
            "spinner",
            "--output",
            str(output_file),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "phi" in captured
    assignment = read_partitioning(output_file)
    assert set(assignment) == set(graph.vertices())


def test_compare_command_on_dataset(capsys):
    code = main(
        [
            "compare",
            "--dataset",
            "TU",
            "--scale",
            "0.03",
            "-k",
            "4",
            "--partitioners",
            "hash",
            "ldg",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hash" in out and "ldg" in out


def test_experiment_command(capsys):
    code = main(["experiment", "table3", "--scale", "0.03"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rho" in out


def test_experiment_command_csr_backend(capsys):
    code = main(["experiment", "table3", "--scale", "0.03", "--backend", "csr"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rho" in out


def test_experiment_backend_warning_for_unbacked_experiment(capsys):
    code = main(
        ["experiment", "fig6a", "--scale", "0.03", "--backend", "csr"]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "ignores the graph backend" in err


def test_partition_command_stream_order(capsys):
    code = main(
        [
            "partition",
            "--dataset",
            "TU",
            "--scale",
            "0.03",
            "-k",
            "4",
            "--partitioner",
            "ldg",
            "--stream-order",
            "bfs",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    assert "ldg" in capsys.readouterr().out


def test_partition_stream_order_rejected_for_non_streaming():
    with pytest.raises(SystemExit):
        main(
            [
                "partition",
                "--dataset",
                "TU",
                "--scale",
                "0.03",
                "-k",
                "2",
                "--partitioner",
                "hash",
                "--stream-order",
                "bfs",
            ]
        )


def test_partition_stream_order_rejected_when_unsupported():
    # fennel has no BFS stream; the CLI must exit cleanly, not traceback.
    with pytest.raises(SystemExit):
        main(
            [
                "partition",
                "--dataset",
                "TU",
                "--scale",
                "0.03",
                "-k",
                "2",
                "--partitioner",
                "fennel",
                "--stream-order",
                "bfs",
            ]
        )


def test_missing_graph_source_errors():
    with pytest.raises(SystemExit):
        main(["partition", "-k", "2"])


# ----------------------------------------------------------------------
# checkpoint / recovery flags
# ----------------------------------------------------------------------
def _edge_file(tmp_path):
    graph = DiGraph.from_edges(
        [(i, (i + 1) % 20) for i in range(20)] + [(i, (i + 3) % 20) for i in range(20)]
    )
    edge_file = tmp_path / "graph.edges"
    write_directed_edge_list(graph, edge_file)
    return edge_file


def test_partition_with_checkpointing_and_recover(tmp_path, capsys):
    edge_file = _edge_file(tmp_path)
    ckpt_dir = tmp_path / "ckpt"
    code = main(
        [
            "partition",
            "--edge-list",
            str(edge_file),
            "-k",
            "2",
            "--partitioner",
            "spinner-pregel",
            "--checkpoint-interval",
            "2",
            "--checkpoint-dir",
            str(ckpt_dir),
            "--fault-plan",
            "crash:2",
        ]
    )
    assert code == 0
    assert list(ckpt_dir.glob("checkpoint_*.pkl"))
    capsys.readouterr()

    code = main(["recover", str(ckpt_dir)])
    assert code == 0
    out = capsys.readouterr().out
    assert "dict" in out
    assert "halt_reason" in out


def _exits_with_code_2(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2


def test_fault_plan_requires_checkpointing(tmp_path):
    edge_file = _edge_file(tmp_path)
    _exits_with_code_2(
        [
            "partition",
            "--edge-list",
            str(edge_file),
            "-k",
            "2",
            "--partitioner",
            "spinner-pregel",
            "--fault-plan",
            "crash:1",
        ]
    )


def test_checkpoint_flags_must_come_in_pairs(tmp_path):
    edge_file = _edge_file(tmp_path)
    base = ["partition", "--edge-list", str(edge_file), "-k", "2",
            "--partitioner", "spinner-pregel"]
    _exits_with_code_2(base + ["--checkpoint-interval", "2"])
    _exits_with_code_2(base + ["--checkpoint-dir", str(tmp_path / "ck")])


def test_checkpointing_rejected_for_non_pregel_partitioner(tmp_path):
    edge_file = _edge_file(tmp_path)
    _exits_with_code_2(
        [
            "partition",
            "--edge-list",
            str(edge_file),
            "-k",
            "2",
            "--partitioner",
            "spinner",
            "--checkpoint-interval",
            "2",
            "--checkpoint-dir",
            str(tmp_path / "ck"),
        ]
    )


def test_malformed_fault_plan_exits_2(tmp_path):
    edge_file = _edge_file(tmp_path)
    _exits_with_code_2(
        [
            "partition",
            "--edge-list",
            str(edge_file),
            "-k",
            "2",
            "--partitioner",
            "spinner-pregel",
            "--checkpoint-interval",
            "2",
            "--checkpoint-dir",
            str(tmp_path / "ck"),
            "--fault-plan",
            "kaboom:3",
        ]
    )


def test_recover_rejects_missing_directory(tmp_path):
    _exits_with_code_2(["recover", str(tmp_path / "nope")])


def test_recover_rejects_empty_directory(tmp_path):
    _exits_with_code_2(["recover", str(tmp_path)])
