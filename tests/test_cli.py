"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.io import read_partitioning, write_directed_edge_list
from repro.graph.digraph import DiGraph


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["partition", "--dataset", "TU", "-k", "4"])
    assert args.command == "partition"
    args = parser.parse_args(["experiment", "table3"])
    assert args.command == "experiment"


def test_partition_command_writes_assignment(tmp_path, capsys):
    graph = DiGraph.from_edges([(i, (i + 1) % 20) for i in range(20)] + [(i, (i + 2) % 20) for i in range(20)])
    edge_file = tmp_path / "graph.edges"
    write_directed_edge_list(graph, edge_file)
    output_file = tmp_path / "parts.txt"
    code = main(
        [
            "partition",
            "--edge-list",
            str(edge_file),
            "-k",
            "2",
            "--partitioner",
            "spinner",
            "--output",
            str(output_file),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "phi" in captured
    assignment = read_partitioning(output_file)
    assert set(assignment) == set(graph.vertices())


def test_compare_command_on_dataset(capsys):
    code = main(
        [
            "compare",
            "--dataset",
            "TU",
            "--scale",
            "0.03",
            "-k",
            "4",
            "--partitioners",
            "hash",
            "ldg",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hash" in out and "ldg" in out


def test_experiment_command(capsys):
    code = main(["experiment", "table3", "--scale", "0.03"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rho" in out


def test_experiment_command_csr_backend(capsys):
    code = main(["experiment", "table3", "--scale", "0.03", "--backend", "csr"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rho" in out


def test_experiment_backend_warning_for_unbacked_experiment(capsys):
    code = main(
        ["experiment", "fig6a", "--scale", "0.03", "--backend", "csr"]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "ignores the graph backend" in err


def test_partition_command_stream_order(capsys):
    code = main(
        [
            "partition",
            "--dataset",
            "TU",
            "--scale",
            "0.03",
            "-k",
            "4",
            "--partitioner",
            "ldg",
            "--stream-order",
            "bfs",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    assert "ldg" in capsys.readouterr().out


def test_partition_stream_order_rejected_for_non_streaming():
    with pytest.raises(SystemExit):
        main(
            [
                "partition",
                "--dataset",
                "TU",
                "--scale",
                "0.03",
                "-k",
                "2",
                "--partitioner",
                "hash",
                "--stream-order",
                "bfs",
            ]
        )


def test_partition_stream_order_rejected_when_unsupported():
    # fennel has no BFS stream; the CLI must exit cleanly, not traceback.
    with pytest.raises(SystemExit):
        main(
            [
                "partition",
                "--dataset",
                "TU",
                "--scale",
                "0.03",
                "-k",
                "2",
                "--partitioner",
                "fennel",
                "--stream-order",
                "bfs",
            ]
        )


def test_missing_graph_source_errors():
    with pytest.raises(SystemExit):
        main(["partition", "-k", "2"])
