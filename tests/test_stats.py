"""Tests for graph statistics helpers."""

from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_cluster, ring_lattice
from repro.graph.stats import (
    average_clustering,
    degree_stats,
    density,
    reciprocity,
)
from repro.graph.undirected import UndirectedGraph


def test_degree_stats_on_lattice():
    graph = ring_lattice(30, degree=4)
    stats = degree_stats(graph)
    assert stats.minimum == 4
    assert stats.maximum == 4
    assert stats.mean == 4.0
    assert stats.hub_ratio == 1.0


def test_degree_stats_directed_uses_out_degree():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
    stats = degree_stats(graph)
    assert stats.maximum == 2
    assert stats.minimum == 0


def test_degree_stats_empty_graph():
    stats = degree_stats(UndirectedGraph())
    assert stats.mean == 0.0
    assert stats.hub_ratio == 0.0


def test_clustering_of_triangle(triangle_graph):
    assert average_clustering(triangle_graph) == 1.0


def test_clustering_of_star_is_zero():
    star = UndirectedGraph.from_edges([(0, i) for i in range(1, 6)])
    assert average_clustering(star) == 0.0


def test_clustering_sampling_is_deterministic():
    graph = powerlaw_cluster(300, 5, 0.5, seed=1)
    assert average_clustering(graph, sample_size=50, seed=3) == average_clustering(
        graph, sample_size=50, seed=3
    )


def test_density():
    graph = UndirectedGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    assert density(graph) == 1.0
    assert density(UndirectedGraph()) == 0.0


def test_reciprocity():
    graph = DiGraph.from_edges([(0, 1), (1, 0), (1, 2)])
    assert abs(reciprocity(graph) - 2 / 3) < 1e-12
    assert reciprocity(DiGraph()) == 0.0
