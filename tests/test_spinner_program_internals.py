"""Superstep-level tests for the Spinner vertex program internals.

These drive the Pregel implementation with bounded iteration counts and
inspect the intermediate state the paper describes: the in-engine graph
conversion (NeighborPropagation / NeighborDiscovery), the load aggregators
and the per-worker asynchronous deltas.
"""

import pytest

from repro.core.config import SpinnerConfig
from repro.core.program import (
    MIGRATIONS_AGGREGATOR,
    SCORE_AGGREGATOR,
    SpinnerProgram,
    SpinnerVertexValue,
    WORKER_LOAD_DELTA_KEY,
    candidate_aggregator_name,
    load_aggregator_name,
)
from repro.core.spinner import SpinnerPartitioner
from repro.graph.digraph import DiGraph
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.engine import PregelEngine


def run_spinner_vertices(graph, num_partitions, initial, max_iterations=2, num_workers=1):
    """Run the Spinner program and return the raw Pregel vertices."""
    config = SpinnerConfig(seed=0, max_iterations=max_iterations, halt_window=max_iterations)
    program = SpinnerProgram(num_partitions, config, convert_directed=True)
    engine = PregelEngine(num_workers=num_workers, max_supersteps=program.superstep_bound())
    vertices = engine.vertices_from_digraph(
        graph,
        vertex_value=lambda v: SpinnerVertexValue(initial[v]),
        edge_value=lambda s, t: [1, None],
    )
    from repro.core.program import SpinnerMasterCompute

    master = SpinnerMasterCompute(program)
    result = engine.run(program, vertices, master=master)
    return vertices, result, master


def test_in_engine_conversion_builds_weighted_undirected_adjacency(small_directed):
    initial = {v: 0 for v in small_directed.vertices()}
    vertices, _result, _master = run_spinner_vertices(small_directed, 2, initial)
    # Reciprocal pair (0, 1): both endpoints hold an edge of weight 2.
    assert vertices[0].edges[1][0] == 2
    assert vertices[1].edges[0][0] == 2
    # One-directional edge (1, 2): both endpoints know it with weight 1.
    assert vertices[1].edges[2][0] == 1
    assert vertices[2].edges[1][0] == 1
    # Weighted degree equals the number of directed messages of the vertex:
    # vertex 1 has the reciprocal pair with 0 (weight 2) and one single
    # direction edge with 2 (weight 1).
    assert vertices[1].value.weighted_degree == pytest.approx(3.0)


def test_neighbour_labels_are_learned_after_initialization(small_directed):
    initial = {v: v % 2 for v in small_directed.vertices()}
    vertices, _result, _master = run_spinner_vertices(small_directed, 2, initial)
    # After at least one ComputeScores superstep every edge value carries a
    # neighbour label (it may be stale by one iteration, but never None).
    for vertex in vertices.values():
        for _target, (weight, label) in vertex.edges.items():
            assert weight in (1, 2)
            assert label is not None


def test_load_aggregators_track_total_degree(small_directed):
    initial = {v: 0 for v in small_directed.vertices()}
    _vertices, result, _master = run_spinner_vertices(small_directed, 2, initial)
    loads = [result.aggregators.value(load_aggregator_name(l)) for l in range(2)]
    total_degree = 2 * small_directed.num_edges  # each directed edge counted once per endpoint
    assert sum(loads) == pytest.approx(total_degree)


def test_aggregator_registration_names():
    program = SpinnerProgram(3, SpinnerConfig(), convert_directed=False)
    registry = AggregatorRegistry()
    program.register_aggregators(registry)
    names = set(registry.names())
    assert {load_aggregator_name(l) for l in range(3)} <= names
    assert {candidate_aggregator_name(l) for l in range(3)} <= names
    assert SCORE_AGGREGATOR in names and MIGRATIONS_AGGREGATOR in names


def test_pre_superstep_resets_worker_deltas():
    program = SpinnerProgram(2, SpinnerConfig(), convert_directed=False)
    store = {WORKER_LOAD_DELTA_KEY: {0: 5.0}}
    program.pre_superstep(3, store, AggregatorRegistry())
    assert store[WORKER_LOAD_DELTA_KEY] == {}


def test_master_history_has_one_record_per_iteration(community_graph):
    config = SpinnerConfig(seed=1, max_iterations=8, halt_window=8)
    partitioner = SpinnerPartitioner(config, num_workers=2)
    result = partitioner.partition(community_graph, 3)
    assert result.iterations == len(result.history)
    assert [record.iteration for record in result.history] == list(range(result.iterations))


def test_superstep_bound_covers_all_phases():
    config = SpinnerConfig(max_iterations=10)
    with_conversion = SpinnerProgram(2, config, convert_directed=True)
    without_conversion = SpinnerProgram(2, config, convert_directed=False)
    assert with_conversion.superstep_bound() == without_conversion.superstep_bound() + 2
    assert with_conversion.superstep_bound() >= 2 + 1 + 2 * 10


def test_isolated_vertices_are_assigned(two_cliques):
    graph = DiGraph()
    for u, v, _w in two_cliques.edges():
        graph.add_edge(u, v)
    graph.add_vertex(42)  # isolated vertex, degree 0
    config = SpinnerConfig(seed=0, max_iterations=10)
    result = SpinnerPartitioner(config, num_workers=2).partition(graph, 2)
    assert 42 in result.assignment
    assert 0 <= result.assignment[42] < 2
