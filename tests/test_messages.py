"""Tests for message stores and combiners."""

from repro.pregel.messages import (
    MessageStore,
    MinCombiner,
    SumCombiner,
    make_message_router,
)


def test_messages_grouped_by_target():
    store = MessageStore()
    store.send(1, "a")
    store.send(2, "b")
    store.send(1, "c")
    assert store.messages_for(1) == ["a", "c"]
    assert store.messages_for(2) == ["b"]
    assert store.messages_for(3) == []
    assert store.targets() == {1, 2}
    assert len(store) == 3


def test_sum_combiner_merges_messages():
    store = MessageStore(SumCombiner())
    store.send(1, 2)
    store.send(1, 3)
    assert store.messages_for(1) == [5]
    assert store.messages_enqueued == 2


def test_min_combiner():
    store = MessageStore(MinCombiner())
    store.send(0, 9)
    store.send(0, 4)
    store.send(0, 7)
    assert store.messages_for(0) == [4]


def test_is_empty():
    store = MessageStore()
    assert store.is_empty()
    store.send(0, 1)
    assert not store.is_empty()


def test_router_invokes_callback():
    store = MessageStore()
    seen = []
    send = make_message_router(store, on_send=seen.append)
    send(3, "x")
    send(4, "y")
    assert seen == [3, 4]
    assert store.messages_for(3) == ["x"]
