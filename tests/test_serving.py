"""Tests for the online graph-sharding service (:mod:`repro.serving`).

Pins the serving layer's correctness contract:

* versions are gapless and monotone (0 = empty bootstrap, +1 per publish);
* lookups racing an in-flight repartition answer from one complete,
  consistent version — never a mixture (held open with the pipeline's
  ``post_execute_hook``);
* warm start round-trips the persisted assignment byte-exactly;
* a churn-triggered repartition is bit-identical to calling the same
  engine's ``adapt_to_graph_changes`` directly with the same seed;
* hash-fallback miss semantics match :class:`HashPartitioner`'s rule and
  are flagged;
* the ``serve`` CLI validates its flags with exit code 2 and serves the
  full TCP protocol end to end (the CI smoke).
"""

import asyncio
import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.errors import ReproError, ServingError
from repro.graph.dynamic import GraphDelta, bursty_new_edges, random_new_edges
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.metrics.quality import locality
from repro.partitioners.hashing import hash_labels_array
from repro.serving import (
    AssignmentSnapshot,
    AssignmentStore,
    ChurnPipeline,
    ServingConfig,
    ShardingService,
    send_requests,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _graph(seed=3, n=400):
    return powerlaw_cluster(n, edges_per_vertex=6, triangle_probability=0.5, seed=seed)


def _pipeline(graph, k=4, seed=3, **config_kwargs):
    config = ServingConfig(
        num_partitions=k, spinner=SpinnerConfig(seed=seed), **config_kwargs
    )
    store = AssignmentStore(k)
    return ChurnPipeline(graph, store, config)


# ----------------------------------------------------------------------
# assignment store
# ----------------------------------------------------------------------
def test_store_bootstrap_is_version_zero_all_fallback():
    store = AssignmentStore(8)
    assert store.version == 0
    partition, fallback = store.current().lookup(123)
    assert fallback
    assert partition == int(hash_labels_array(np.asarray([123]), 8)[0])
    labels, mask = store.current().lookup_many(np.asarray([1, 2, 3]))
    assert mask.all()
    assert np.array_equal(labels, hash_labels_array(np.asarray([1, 2, 3]), 8))


def test_publish_versions_are_gapless_and_monotone():
    store = AssignmentStore(4)
    ids = np.arange(10, dtype=np.int64)
    versions = [store.version]
    for round_index in range(5):
        labels = np.full(10, round_index % 4, dtype=np.int64)
        snapshot = store.publish(ids, labels)
        versions.append(snapshot.version)
        assert store.current() is snapshot
    assert versions == [0, 1, 2, 3, 4, 5]


def test_old_snapshot_remains_readable_after_publish():
    store = AssignmentStore(4)
    ids = np.arange(10, dtype=np.int64)
    old = store.publish(ids, np.zeros(10, dtype=np.int64))
    store.publish(ids, np.full(10, 3, dtype=np.int64))
    # A reader that grabbed the old snapshot before the swap still sees a
    # complete, consistent version 1.
    assert old.version == 1
    assert old.lookup(5) == (0, False)
    assert store.current().lookup(5) == (3, False)


def test_snapshot_validation():
    with pytest.raises(ServingError):
        AssignmentSnapshot(1, np.asarray([3, 1, 2]), np.zeros(3, dtype=np.int64), 4)
    with pytest.raises(ServingError):
        AssignmentSnapshot(1, np.asarray([1, 2]), np.zeros(3, dtype=np.int64), 4)
    with pytest.raises(ReproError):
        AssignmentSnapshot(1, np.asarray([1, 2]), np.asarray([0, 4]), 4)
    with pytest.raises(ServingError):
        AssignmentSnapshot(1, np.asarray([1]), np.asarray([0]), 0)
    with pytest.raises(ServingError):
        AssignmentStore(0)


def test_snapshot_arrays_are_immutable():
    snapshot = AssignmentSnapshot(
        1, np.arange(4, dtype=np.int64), np.zeros(4, dtype=np.int64), 2
    )
    with pytest.raises(ValueError):
        snapshot.ids[0] = 99
    with pytest.raises(ValueError):
        snapshot.labels[0] = 1


def test_fallback_semantics_match_hash_partitioner():
    store = AssignmentStore(8)
    ids = np.asarray([2, 5, 9], dtype=np.int64)
    store.publish(ids, np.asarray([1, 0, 7], dtype=np.int64))
    snapshot = store.current()
    assert snapshot.lookup(5) == (0, False)
    partition, fallback = snapshot.lookup(4)
    assert fallback
    assert partition == int(hash_labels_array(np.asarray([4]), 8)[0])
    labels, mask = snapshot.lookup_many(np.asarray([2, 4, 9, 10**9]))
    assert mask.tolist() == [False, True, False, True]
    assert labels[0] == 1 and labels[2] == 7
    expected = hash_labels_array(np.asarray([4, 10**9]), 8)
    assert labels[1] == expected[0] and labels[3] == expected[1]


def test_warm_start_round_trip_is_byte_exact(tmp_path):
    store = AssignmentStore(4)
    store.publish_assignment({7: 1, 3: 0, 11: 3, 5: 2})
    first = tmp_path / "assignment.txt"
    store.save(first)
    raw = first.read_bytes()

    restarted = AssignmentStore(4)
    snapshot = restarted.warm_start(first)
    assert snapshot.version == 1
    assert snapshot.to_assignment() == {3: 0, 5: 2, 7: 1, 11: 3}
    second = tmp_path / "again.txt"
    restarted.save(second)
    assert second.read_bytes() == raw


def test_warm_start_rejects_empty_file(tmp_path):
    empty = tmp_path / "empty.txt"
    empty.write_text("")
    with pytest.raises(ServingError):
        AssignmentStore(4).warm_start(empty)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_partitions": 0},
        {"num_partitions": 4, "edge_threshold": 0},
        {"num_partitions": 4, "phi_drift": 0.0},
        {"num_partitions": 4, "phi_drift": 1.5},
        {"num_partitions": 4, "engine": "metis"},
        {"num_partitions": 4, "parallel": 0},
        {"num_partitions": 4, "parallel": 2, "engine": "fast"},
        {"num_partitions": 4, "log_interval": -1.0},
    ],
)
def test_serving_config_validation(kwargs):
    with pytest.raises(ServingError):
        ServingConfig(**kwargs)


def test_pipeline_rejects_mismatched_store():
    graph = _graph()
    config = ServingConfig(num_partitions=4)
    with pytest.raises(ServingError):
        ChurnPipeline(graph, AssignmentStore(8), config)


# ----------------------------------------------------------------------
# churn pipeline
# ----------------------------------------------------------------------
def test_churn_triggered_run_matches_direct_adapt():
    seed = 17
    graph = _graph(seed=seed)
    pipeline = _pipeline(graph, k=4, seed=seed)
    pipeline.bootstrap()
    previous = pipeline.store.current().to_assignment()

    delta = bursty_new_edges(graph, fraction=0.05, seed=seed)
    pipeline.ingest(delta)
    pipeline.repartition_now()

    direct = FastSpinner(SpinnerConfig(seed=seed)).adapt_to_graph_changes(
        graph, previous, 4
    )
    snapshot = pipeline.store.current()
    assert snapshot.version == 2
    assert np.array_equal(snapshot.ids, direct.original_ids)
    assert np.array_equal(snapshot.labels, direct.labels)
    assert snapshot.to_assignment() == {
        int(v): int(label)
        for v, label in zip(direct.original_ids.tolist(), direct.labels.tolist())
    }


def test_phi_estimator_is_exact_for_existing_vertices():
    graph = _graph(seed=5)
    pipeline = _pipeline(graph, k=4, seed=5)
    pipeline.bootstrap()
    delta = random_new_edges(graph, fraction=0.05, seed=9)
    pipeline.ingest(delta)

    snapshot = pipeline.store.current()
    ids = np.fromiter(graph.vertices(), dtype=np.int64, count=graph.num_vertices)
    labels, _ = snapshot.lookup_many(ids)
    assignment = {
        int(v): int(label) for v, label in zip(ids.tolist(), labels.tolist())
    }
    assert pipeline.estimated_phi() == pytest.approx(
        locality(graph, assignment), abs=1e-9
    )


def test_should_trigger_on_edge_threshold():
    graph = _graph(seed=5)
    pipeline = _pipeline(graph, k=4, seed=5, edge_threshold=10)
    pipeline.bootstrap()
    assert not pipeline.should_trigger()
    pipeline.ingest(random_new_edges(graph, fraction=0.002, seed=1))
    assert pipeline.pending_edges < 10
    assert not pipeline.should_trigger()
    pipeline.ingest(random_new_edges(graph, fraction=0.05, seed=2))
    assert pipeline.pending_edges >= 10
    assert pipeline.should_trigger()
    pipeline.repartition_now()
    assert pipeline.pending_edges == 0
    assert not pipeline.should_trigger()


def test_should_trigger_on_phi_drift():
    graph = _graph(seed=5)
    pipeline = _pipeline(graph, k=4, seed=5, edge_threshold=None, phi_drift=0.01)
    pipeline.bootstrap()
    # Structure-ignoring churn degrades the estimated locality quickly.
    pipeline.ingest(random_new_edges(graph, fraction=0.1, seed=3))
    assert pipeline.estimated_drift() > 0.01
    assert pipeline.should_trigger()


def test_freeze_rejects_double_flight():
    graph = _graph()
    pipeline = _pipeline(graph)
    pipeline.bootstrap()
    pipeline.ingest(random_new_edges(graph, fraction=0.02, seed=1))
    job = pipeline.freeze()
    assert pipeline.in_flight
    assert not pipeline.should_trigger()
    with pytest.raises(ServingError):
        pipeline.freeze()
    outcome = pipeline.execute(job)
    report = pipeline.publish(job, outcome)
    assert not pipeline.in_flight
    assert report.version == 2


def test_ingest_skips_duplicates_and_self_loops():
    graph = erdos_renyi(20, 40, seed=1)
    pipeline = _pipeline(graph, k=2, seed=1)
    pipeline.bootstrap()
    existing = next(iter(graph.edges()))
    delta = GraphDelta(added_edges=[(5, 5, 1), (existing[0], existing[1], 1)])
    assert pipeline.ingest(delta) == 0
    assert pipeline.pending_edges == 0


def test_migration_report_counts_common_vertices_only():
    graph = _graph(seed=21)
    pipeline = _pipeline(graph, k=4, seed=21)
    report = pipeline.bootstrap()
    # Bootstrap has no previous vertices -> no migrations by definition.
    assert report.migrations == 0
    assert report.migration_fraction == 0.0
    pipeline.ingest(bursty_new_edges(graph, fraction=0.08, seed=2))
    report = pipeline.repartition_now()
    assert 0 <= report.migrations <= graph.num_vertices
    assert 0.0 <= report.migration_fraction <= 1.0
    assert report.pending_edges_consumed > 0


# ----------------------------------------------------------------------
# service: in-flight consistency and versioning
# ----------------------------------------------------------------------
def test_lookups_during_inflight_repartition_stay_consistent():
    graph = _graph(seed=7)
    config = ServingConfig(
        num_partitions=4,
        edge_threshold=10,
        spinner=SpinnerConfig(seed=7),
        log_interval=0.0,
    )
    service = ShardingService(graph, config)
    probe = np.fromiter(
        list(graph.vertices())[:50], dtype=np.int64, count=50
    ).tolist()

    async def run():
        await service.start()
        try:
            baseline = service.lookup_many(probe)
            assert baseline["version"] == 1

            gate = threading.Event()
            entered = threading.Event()

            def hold_open(job, outcome):
                entered.set()
                assert gate.wait(timeout=30)

            service.pipeline.post_execute_hook = hold_open
            triggered = service.ingest(random_new_edges(graph, 0.05, seed=1))
            assert triggered

            loop = asyncio.get_running_loop()
            assert await loop.run_in_executor(None, entered.wait, 30)
            # The repartition is mid-flight: engine done, publish pending.
            assert service.pipeline.in_flight
            during = service.lookup_many(probe)
            assert during["version"] == 1
            assert during["partitions"] == baseline["partitions"]
            assert during["fallbacks"] == baseline["fallbacks"]

            gate.set()
            while service.store.version < 2:
                await asyncio.sleep(0.005)
            after = service.lookup_many(probe)
            assert after["version"] == 2
        finally:
            await service.stop()

    asyncio.run(run())


def test_service_versions_gapless_across_churn_rounds():
    graph = _graph(seed=11)
    config = ServingConfig(
        num_partitions=4,
        edge_threshold=5,
        spinner=SpinnerConfig(seed=11),
        log_interval=0.0,
    )
    service = ShardingService(graph, config)

    async def run():
        await service.start()
        try:
            versions = [service.store.version]
            for round_index in range(3):
                service.ingest(random_new_edges(graph, 0.03, seed=round_index))
                target = versions[-1] + 1
                while service.store.version < target:
                    await asyncio.sleep(0.005)
                versions.append(service.store.version)
            assert versions == [1, 2, 3, 4]
        finally:
            await service.stop()

    asyncio.run(run())


# ----------------------------------------------------------------------
# service: TCP protocol
# ----------------------------------------------------------------------
def _start_thread_service(service):
    ready = threading.Event()
    bound = {}

    def on_ready(started):
        bound["port"] = started.port
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve_forever(ready=on_ready)),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=30)
    return thread, bound["port"]


def test_tcp_protocol_end_to_end():
    graph = _graph(seed=13)
    config = ServingConfig(
        num_partitions=4,
        edge_threshold=25,
        spinner=SpinnerConfig(seed=13),
        log_interval=0.0,
    )
    service = ShardingService(graph, config)
    thread, port = _start_thread_service(service)

    max_id = max(graph.vertices())
    responses = send_requests(
        "127.0.0.1",
        port,
        [
            {"op": "version"},
            {"op": "lookup", "vertex": 0},
            {"op": "lookup", "vertices": [0, 1, max_id + 1000]},
            {"op": "lookup"},
            {"op": "nonsense"},
            {"op": "ingest", "edges": [[0, 1, 2, 3]]},
            {"op": "wait_version", "version": 99, "timeout": 0.05},
            {"op": "quality"},
            {"op": "stats"},
        ],
    )
    version, single, batch, bad_lookup, bad_op, bad_ingest, timed_out, quality, stats = (
        responses
    )
    assert version == {"ok": True, "version": 1}
    assert single["ok"] and not single["fallback"]
    assert batch["ok"] and batch["fallbacks"] == [2]
    assert not bad_lookup["ok"]
    assert not bad_op["ok"] and "nonsense" in bad_op["error"]
    assert not bad_ingest["ok"]
    assert not timed_out["ok"] and timed_out["version"] == 1
    assert quality["ok"] and 0.0 <= quality["phi"] <= 1.0 and quality["rho"] >= 1.0
    payload = stats["stats"]
    for key in (
        "version",
        "lookups_total",
        "pending_edges",
        "estimated_phi",
        "latency_p50_s",
        "latency_p99_s",
        "last_repartition",
    ):
        assert key in payload, key

    # Churn burst over the wire -> background swap -> consistent answers.
    burst = [[int(u), int(v)] for u, v, _ in random_new_edges(graph, 0.06, seed=4).added_edges]
    ingest, waited, after = send_requests(
        "127.0.0.1",
        port,
        [
            {"op": "ingest", "edges": burst},
            {"op": "wait_version", "version": 2, "timeout": 30},
            {"op": "lookup", "vertices": [0, 1, 2]},
        ],
    )
    assert ingest["ok"] and ingest["repartition_triggered"]
    assert waited == {"ok": True, "version": 2}
    assert after["version"] == 2 and after["fallbacks"] == []

    (closing,) = send_requests("127.0.0.1", port, [{"op": "shutdown"}])
    assert closing["ok"]
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_malformed_request_line_is_an_error_not_a_crash():
    graph = erdos_renyi(30, 60, seed=2)
    config = ServingConfig(
        num_partitions=2, spinner=SpinnerConfig(seed=2), log_interval=0.0
    )
    service = ShardingService(graph, config)
    thread, port = _start_thread_service(service)
    import socket

    with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
        reader = conn.makefile("rb")
        conn.sendall(b"this is not json\n")
        error = json.loads(reader.readline())
        assert not error["ok"]
        conn.sendall(b'{"op": "version"}\n')
        assert json.loads(reader.readline())["version"] == 1
    send_requests("127.0.0.1", port, [{"op": "shutdown"}])
    thread.join(timeout=30)


def test_warm_started_service_serves_saved_assignment(tmp_path):
    graph = _graph(seed=19)
    config = ServingConfig(
        num_partitions=4, spinner=SpinnerConfig(seed=19), log_interval=0.0
    )
    service = ShardingService(graph, config)
    path = tmp_path / "warm.txt"
    service.store.save(path)
    expected = service.store.current().to_assignment()

    warm = ShardingService(graph, config, warm_start=str(path))
    assert warm.store.version == 1
    assert warm.last_report is None
    assert warm.store.current().to_assignment() == expected
    # The estimator was rebased from the file, not a repartition run.
    assert warm.pipeline.estimated_drift() == pytest.approx(0.0, abs=1e-12)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_serve_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["serve", "--dataset", "TU", "-k", "4"])
    assert args.command == "serve"
    assert args.edge_threshold == 512
    assert args.engine == "fast"
    assert args.port == 0


@pytest.mark.parametrize(
    "argv",
    [
        ["serve", "--dataset", "TU", "-k", "0"],
        ["serve", "--dataset", "TU", "-k", "4", "--edge-threshold", "0"],
        ["serve", "--dataset", "TU", "-k", "4", "--phi-drift", "1.5"],
        ["serve", "--dataset", "TU", "-k", "4", "--parallel", "2"],
        ["serve", "--dataset", "TU", "-k", "4", "--engine", "dict", "--storage", "ram"],
        ["serve", "--dataset", "TU", "-k", "4", "--storage-dir", "/tmp/x"],
        ["serve", "--dataset", "TU", "-k", "4", "--storage", "mmap", "--storage-chunk", "0"],
        ["serve", "--dataset", "TU", "-k", "4", "--port", "70000"],
        ["serve", "--dataset", "TU", "-k", "4", "--log-interval", "-1"],
        ["serve", "--dataset", "TU", "-k", "4", "--assignment", "/nonexistent/a.txt"],
        ["serve", "-k", "4"],
        ["serve", "--edge-list", "/nonexistent/graph.edges", "-k", "4"],
    ],
)
def test_serve_cli_validation_exits_2(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2


def test_serve_cli_smoke_over_tcp(tmp_path):
    """End-to-end subprocess smoke (also exercised by the CI serving step)."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    saved = tmp_path / "assignment.txt"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--dataset",
            "TU",
            "--scale",
            "0.05",
            "-k",
            "4",
            "--edge-threshold",
            "50",
            "--seed",
            "7",
            "--log-interval",
            "0",
            "--save-assignment",
            str(saved),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        for line in proc.stdout:
            if line.startswith("serving on "):
                port = int(line.rsplit(":", 1)[1])
                break
        assert port is not None, proc.stderr.read()

        responses = send_requests(
            "127.0.0.1",
            port,
            [
                {"op": "lookup", "vertices": [0, 1, 2]},
                {"op": "ingest", "edges": [[i, i + 37] for i in range(60)]},
                {"op": "wait_version", "version": 2, "timeout": 60},
                {"op": "lookup", "vertices": [0, 1, 2]},
                {"op": "shutdown"},
            ],
            timeout=60,
        )
        before, ingest, waited, after, closing = responses
        assert before["ok"] and before["version"] == 1
        assert ingest["ok"] and ingest["repartition_triggered"]
        assert waited["ok"] and waited["version"] == 2
        assert after["ok"] and after["version"] == 2
        assert len(after["partitions"]) == 3
        assert closing["ok"]
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert f"assignment written to {saved}" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert saved.stat().st_size > 0

    # Warm restart from the persisted assignment answers immediately.
    code = _warm_restart_probe(env, saved)
    assert code == 0


def _warm_restart_probe(env, saved):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--dataset",
            "TU",
            "--scale",
            "0.05",
            "-k",
            "4",
            "--log-interval",
            "0",
            "--assignment",
            str(saved),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        for line in proc.stdout:
            if line.startswith("serving on "):
                port = int(line.rsplit(":", 1)[1])
                break
        assert port is not None, proc.stderr.read()
        version, closing = send_requests(
            "127.0.0.1", port, [{"op": "version"}, {"op": "shutdown"}], timeout=60
        )
        assert version == {"ok": True, "version": 1}
        assert closing["ok"]
        proc.communicate(timeout=60)
        return proc.returncode
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
