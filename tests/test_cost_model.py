"""Tests for the cluster cost model."""

from repro.pregel.cost_model import (
    ClusterCostModel,
    RunStats,
    SuperstepStats,
    WorkerStats,
)


def make_superstep(worker_loads):
    stats = SuperstepStats(superstep=0)
    for vertices, edges, local, remote in worker_loads:
        stats.worker_stats.append(
            WorkerStats(
                vertices_computed=vertices,
                edges_scanned=edges,
                local_messages_sent=local,
                remote_messages_sent=remote,
            )
        )
    return stats


def test_worker_time_formula():
    model = ClusterCostModel(
        compute_cost=1.0, per_edge_cost=0.5, local_message_cost=0.1, remote_message_cost=2.0
    )
    assert model.worker_time(10, 4, 5, 3) == 10 + 2.0 + 0.5 + 6.0


def test_superstep_time_is_max_over_workers():
    model = ClusterCostModel()
    stats = make_superstep([(10, 0, 0, 0), (50, 0, 0, 0)])
    assert stats.simulated_time(model) == 50 * model.compute_cost
    assert stats.min_worker_time(model) == 10 * model.compute_cost
    assert stats.mean_worker_time(model) == 30 * model.compute_cost


def test_message_counters():
    stats = make_superstep([(1, 1, 3, 2), (1, 1, 1, 4)])
    assert stats.local_messages == 4
    assert stats.remote_messages == 6
    assert stats.total_messages == 10
    assert stats.vertices_computed == 2


def test_remote_messages_cost_more_than_local():
    model = ClusterCostModel()
    local_heavy = make_superstep([(0, 0, 10, 0)])
    remote_heavy = make_superstep([(0, 0, 0, 10)])
    assert remote_heavy.simulated_time(model) > local_heavy.simulated_time(model)


def test_run_stats_aggregation():
    run = RunStats(superstep_stats=[make_superstep([(1, 0, 2, 3)]), make_superstep([(1, 0, 0, 1)])])
    assert run.num_supersteps == 2
    assert run.total_messages == 6
    assert run.remote_messages == 4
    model = ClusterCostModel()
    assert run.simulated_time(model) > 0


def test_empty_superstep():
    model = ClusterCostModel()
    stats = SuperstepStats(superstep=0)
    assert stats.simulated_time(model) == 0.0
    assert stats.mean_worker_time(model) == 0.0
    assert stats.min_worker_time(model) == 0.0
