"""Tests for the baseline partitioners and the registry."""

import pytest

from repro.core.config import SpinnerConfig
from repro.graph.generators import powerlaw_cluster
from repro.metrics.quality import locality, max_normalized_load
from repro.partitioners.base import Partitioner
from repro.partitioners.fennel import FennelPartitioner
from repro.partitioners.hashing import HashPartitioner, ModuloPartitioner
from repro.partitioners.ldg import LinearDeterministicGreedy
from repro.partitioners.metis import MetisLikePartitioner
from repro.partitioners.random_part import RandomPartitioner
from repro.partitioners.registry import available_partitioners, make_partitioner
from repro.partitioners.wang import WangPartitioner
from repro.errors import InvalidPartitionCountError


ALL_BASELINES = [
    HashPartitioner(),
    ModuloPartitioner(),
    RandomPartitioner(seed=0),
    LinearDeterministicGreedy(seed=0),
    FennelPartitioner(seed=0),
    MetisLikePartitioner(seed=0),
    WangPartitioner(seed=0),
]


@pytest.mark.parametrize("partitioner", ALL_BASELINES, ids=lambda p: p.name)
def test_every_partitioner_returns_complete_valid_assignment(partitioner, community_graph):
    assignment = dict(partitioner.partition(community_graph, 4))
    assert set(assignment) == set(community_graph.vertices())
    assert all(0 <= label < 4 for label in assignment.values())


@pytest.mark.parametrize("partitioner", ALL_BASELINES, ids=lambda p: p.name)
def test_run_reports_metrics(partitioner, two_cliques):
    output = partitioner.run(two_cliques, 2)
    assert 0.0 <= output.phi <= 1.0
    assert output.rho >= 1.0
    assert output.partitioner == partitioner.name


def test_run_rejects_invalid_partition_count(two_cliques):
    with pytest.raises(InvalidPartitionCountError):
        HashPartitioner().run(two_cliques, 0)


def test_base_partitioner_is_abstract(two_cliques):
    with pytest.raises(NotImplementedError):
        Partitioner().partition(two_cliques, 2)


def test_locality_aware_baselines_beat_hash(community_graph):
    hash_phi = locality(community_graph, HashPartitioner().partition(community_graph, 4))
    for partitioner in (
        LinearDeterministicGreedy(seed=0),
        FennelPartitioner(seed=0),
        MetisLikePartitioner(seed=0),
        WangPartitioner(seed=0),
    ):
        phi = locality(community_graph, dict(partitioner.partition(community_graph, 4)))
        assert phi > hash_phi, partitioner.name


def test_metis_balance_is_tight(community_graph):
    partitioner = MetisLikePartitioner(balance_tolerance=1.05, seed=0)
    assignment = dict(partitioner.partition(community_graph, 4))
    rho = max_normalized_load(community_graph, assignment, 4)
    assert rho <= 1.35


def test_metis_separates_two_cliques(two_cliques):
    assignment = dict(MetisLikePartitioner(seed=0).partition(two_cliques, 2))
    phi = locality(two_cliques, assignment)
    assert phi >= 0.85


def test_ldg_stream_orders(community_graph):
    for order in ("natural", "random", "bfs"):
        partitioner = LinearDeterministicGreedy(stream_order=order, seed=1)
        assignment = dict(partitioner.partition(community_graph, 4))
        assert set(assignment) == set(community_graph.vertices())
    with pytest.raises(ValueError):
        LinearDeterministicGreedy(stream_order="zigzag")


def test_fennel_respects_capacity(community_graph):
    partitioner = FennelPartitioner(load_factor=1.1, seed=1)
    assignment = dict(partitioner.partition(community_graph, 4))
    counts = [0, 0, 0, 0]
    for label in assignment.values():
        counts[label] += 1
    capacity = 1.1 * community_graph.num_vertices / 4
    assert max(counts) <= capacity + 1


def test_fennel_validation():
    with pytest.raises(ValueError):
        FennelPartitioner(gamma=1.0)
    with pytest.raises(ValueError):
        FennelPartitioner(load_factor=0.5)
    with pytest.raises(ValueError):
        FennelPartitioner(stream_order="bfs")


def test_wang_balances_vertices_not_edges():
    # On a hub-heavy graph, vertex-balanced partitioning leaves the edge
    # balance loose — the property the paper points out for Wang et al.
    graph = powerlaw_cluster(400, edges_per_vertex=6, triangle_probability=0.3, seed=2)
    assignment = dict(WangPartitioner(seed=0).partition(graph, 4))
    counts = {}
    for label in assignment.values():
        counts[label] = counts.get(label, 0) + 1
    vertex_imbalance = max(counts.values()) * 4 / graph.num_vertices
    assert vertex_imbalance < 1.6


def test_registry_lists_and_creates():
    names = available_partitioners()
    assert "spinner" in names and "metis" in names and "hash" in names
    partitioner = make_partitioner("spinner", config=SpinnerConfig(seed=1, max_iterations=10))
    assert partitioner.name == "spinner"
    with pytest.raises(KeyError):
        make_partitioner("does-not-exist")


def test_spinner_adapters_produce_assignments(two_cliques):
    fast = make_partitioner("spinner", config=SpinnerConfig(seed=1, max_iterations=20))
    pregel = make_partitioner(
        "spinner-pregel", config=SpinnerConfig(seed=1, max_iterations=15)
    )
    for adapter in (fast, pregel):
        assignment = dict(adapter.partition(two_cliques, 2))
        assert set(assignment) == set(two_cliques.vertices())


def test_hash_partitioner_is_deterministic(two_cliques):
    first = HashPartitioner().partition(two_cliques, 4)
    second = HashPartitioner().partition(two_cliques, 4)
    assert first == second
