"""Unit tests for the weighted undirected graph structure."""

import pytest

from repro.errors import GraphError
from repro.graph.undirected import UndirectedGraph


def test_add_edge_symmetric():
    graph = UndirectedGraph()
    graph.add_edge(0, 1, weight=2)
    assert graph.has_edge(0, 1)
    assert graph.has_edge(1, 0)
    assert graph.weight(0, 1) == 2
    assert graph.weight(1, 0) == 2


def test_self_loop_rejected():
    graph = UndirectedGraph()
    with pytest.raises(GraphError):
        graph.add_edge(3, 3)


def test_non_positive_weight_rejected():
    graph = UndirectedGraph()
    with pytest.raises(GraphError):
        graph.add_edge(0, 1, weight=0)


def test_duplicate_edge_keeps_weight():
    graph = UndirectedGraph()
    assert graph.add_edge(0, 1, weight=1)
    assert not graph.add_edge(0, 1, weight=5)
    assert graph.weight(0, 1) == 1


def test_set_weight_updates_total():
    graph = UndirectedGraph.from_edges([(0, 1), (1, 2)])
    graph.set_weight(0, 1, 2)
    assert graph.total_weight == 3
    with pytest.raises(GraphError):
        graph.set_weight(0, 2, 2)


def test_degrees():
    graph = UndirectedGraph.from_edges([(0, 1, 2), (1, 2, 1)])
    assert graph.degree(1) == 2
    assert graph.weighted_degree(1) == 3
    assert graph.weighted_degree(0) == 2


def test_remove_edge_updates_counts():
    graph = UndirectedGraph.from_edges([(0, 1, 2), (1, 2, 1)])
    assert graph.remove_edge(0, 1)
    assert graph.num_edges == 1
    assert graph.total_weight == 1
    assert not graph.remove_edge(0, 1)


def test_edges_listed_once():
    graph = UndirectedGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    edges = list(graph.edges())
    assert len(edges) == 3
    assert all(u < v for u, v, _w in edges)


def test_from_edges_with_weights_and_isolated():
    graph = UndirectedGraph.from_edges([(0, 1, 3)], num_vertices=4)
    assert graph.num_vertices == 4
    assert graph.weight(0, 1) == 3
    assert graph.degree(3) == 0


def test_copy_is_independent():
    graph = UndirectedGraph.from_edges([(0, 1)])
    clone = graph.copy()
    clone.add_edge(1, 2)
    assert graph.num_edges == 1
    assert clone.num_edges == 2
