"""Ablation benchmarks for the design choices called out in DESIGN.md."""

from benchmarks.conftest import print_rows
from repro.experiments.ablations import (
    run_conversion_ablation,
    run_quality_ablations,
    run_worker_local_ablation,
)


def test_quality_ablations(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_quality_ablations(num_partitions=16, dataset="TU", scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Ablations — balance penalty, probabilistic migration, tie-breaking", rows)
    by_variant = {row["variant"]: row for row in rows}
    # Without the balance penalty the partitioning drifts out of balance.
    assert by_variant["no_balance_penalty"]["rho"] >= by_variant["baseline"]["rho"]


def test_conversion_ablation(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_conversion_ablation(num_partitions=8, scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Ablation — direction-aware (eq. 3) vs naive undirected conversion", rows)
    assert {row["variant"] for row in rows} == {"weighted", "naive"}


def test_worker_local_updates_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_worker_local_ablation(num_partitions=4),
        rounds=1,
        iterations=1,
    )
    print_rows("Ablation — per-worker asynchronous load counters (Pregel implementation)", rows)
    assert len(rows) == 2
