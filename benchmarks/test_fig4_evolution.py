"""Figure 4 — evolution of phi, rho and score(G) during partitioning."""

from benchmarks.conftest import print_rows
from repro.experiments.fig4 import halting_iteration, run_fig4


def test_fig4a_twitter_evolution(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig4(dataset="TW", num_partitions=32, max_iterations=60, scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 4(a) — Twitter proxy, k=32 (every 5th iteration)", rows[::5])
    print(f"halting heuristic would stop at iteration {halting_iteration(rows)}")

    # rho starts high under random assignment and is driven down quickly...
    assert rows[0]["rho"] > rows[-1]["rho"] or rows[0]["rho"] <= 1.2
    # ...while phi and the aggregate score improve monotonically on the whole.
    assert rows[-1]["phi"] > rows[0]["phi"]
    assert rows[-1]["score"] > rows[0]["score"]


def test_fig4b_web_graph_evolution(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig4(dataset="Y!", num_partitions=16, max_iterations=50, scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 4(b) — Yahoo! web proxy, k=16 (every 5th iteration)", rows[::5])
    # The web graph converges to high locality (the paper reports 73%).
    assert rows[-1]["phi"] > 0.5
    assert rows[-1]["rho"] <= 1.3
