"""Table III — average maximum normalized load per graph."""

from benchmarks.conftest import print_rows
from repro.experiments.table3 import run_table3


def test_table3_balance(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_table3(scale=scale), rounds=1, iterations=1)
    print_rows("Table III — average rho per graph (paper: 1.04-1.06)", rows)
    for row in rows:
        assert 1.0 <= row["rho"] <= 1.35
