"""Tentpole benchmark: CSR baseline kernels vs. the dictionary references.

Times the three non-trivial Table I baselines — LDG, Fennel and Wang's
LPA-coarsening partitioner — end-to-end on a 100k-vertex community graph
under both implementations and records the numbers in
``BENCH_baselines.json`` at the repo root, so the performance trajectory
(kernel, Pregel, Spinner, and now the comparison harness itself) covers
all four runtime layers.

The workload is a planted-partition social-style graph (communities of
~200 vertices, average degree ~26 — between LiveJournal's ~17 and
Twitter's ~70) built once as an edge array and materialized as both an
:class:`UndirectedGraph` and a :class:`CSRGraph`, so both paths partition
the identical graph.  Assignment equality is asserted for every baseline;
the >= 5x end-to-end speedup floor is asserted per baseline.

Notes on what the floor means for Wang: the CSR fast path accelerates the
LPA sweeps, the contraction and the projection; the multilevel
partitioning of the (small) coarse graph is shared, dictionary-based code
on both sides, so the end-to-end ratio *understates* the coarsening
speedup.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_baseline_speed.py -s
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.graph.csr import CSRGraph
from bench_io import bench_path, env_float, env_int, write_bench
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.fennel import FennelPartitioner
from repro.partitioners.ldg import LinearDeterministicGreedy
from repro.partitioners.wang import WangPartitioner

BENCH_PATH = bench_path("BENCH_baselines.json")

NUM_VERTICES = env_int("BASELINE_BENCH_NUM_VERTICES", 100000)
COMMUNITY_SIZE = 200
INTRA_DEGREE = 12
INTER_DEGREE = 2
GRAPH_SEED = 9
PARTITIONER_SEED = 5
STREAM_K = 32
WANG_K = 8
WANG_SWEEPS = 8
# Shared CI runners have noisy wall clocks; they may relax the floor via
# the environment (see .github/workflows/ci.yml) without touching the
# dedicated-machine contract of 5x.
MIN_SPEEDUP = env_float("BASELINE_BENCH_MIN_SPEEDUP", 5.0)
# Wall clocks on loaded machines fluctuate; report the best of N runs per
# implementation (the partitioners are deterministic, so every run yields
# the same assignment).
REPEATS = env_int("BASELINE_BENCH_REPEATS", 2)


def _planted_partition_edges(num_vertices: int, seed: int) -> np.ndarray:
    """Vectorized community graph: dense intra-community, sparse inter."""
    rng = np.random.default_rng(seed)
    intra_sources = rng.integers(num_vertices, size=num_vertices * INTRA_DEGREE)
    offsets = rng.integers(COMMUNITY_SIZE, size=num_vertices * INTRA_DEGREE)
    intra_targets = np.minimum(
        (intra_sources // COMMUNITY_SIZE) * COMMUNITY_SIZE + offsets, num_vertices - 1
    )
    inter_sources = rng.integers(num_vertices, size=num_vertices * INTER_DEGREE)
    inter_targets = rng.integers(num_vertices, size=num_vertices * INTER_DEGREE)
    sources = np.concatenate([intra_sources, inter_sources])
    targets = np.concatenate([intra_targets, inter_targets])
    keep = sources != targets
    sources, targets = sources[keep], targets[keep]
    key = np.minimum(sources, targets) * np.int64(num_vertices) + np.maximum(
        sources, targets
    )
    _, first = np.unique(key, return_index=True)
    first = np.sort(first)
    return np.stack([sources[first], targets[first]], axis=1).astype(np.int64)


def _graph_pair() -> tuple[UndirectedGraph, CSRGraph, np.ndarray]:
    edges = _planted_partition_edges(NUM_VERTICES, GRAPH_SEED)
    graph = UndirectedGraph()
    for vertex in range(NUM_VERTICES):
        graph.add_vertex(vertex)
    for u, v in edges.tolist():
        graph.add_edge(u, v)
    return graph, CSRGraph.from_edge_list(edges, NUM_VERTICES), edges


def _best_of(fn) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(partitioner, graph: UndirectedGraph, csr: CSRGraph, k: int) -> dict:
    dict_seconds, assignment = _best_of(lambda: partitioner.partition(graph, k))
    csr_seconds, labels = _best_of(lambda: partitioner.partition_array(csr, k))
    reference = np.asarray(
        [assignment[vertex] for vertex in range(csr.num_vertices)], dtype=np.int64
    )
    assert np.array_equal(reference, labels), partitioner.name
    from repro.metrics.quality import locality, max_normalized_load

    return {
        "baseline": partitioner.name,
        "k": k,
        "dict_seconds": round(dict_seconds, 4),
        "csr_seconds": round(csr_seconds, 4),
        "speedup": round(dict_seconds / csr_seconds, 2),
        "phi": round(locality(csr, labels), 4),
        "rho": round(max_normalized_load(csr, labels, k), 4),
        "assignments_identical": True,
    }


def test_baseline_csr_kernels_speedup_and_equality():
    graph, csr, edges = _graph_pair()
    rows = [
        _measure(LinearDeterministicGreedy(seed=PARTITIONER_SEED), graph, csr, STREAM_K),
        _measure(FennelPartitioner(seed=PARTITIONER_SEED), graph, csr, STREAM_K),
        _measure(
            WangPartitioner(lpa_iterations=WANG_SWEEPS, seed=PARTITIONER_SEED),
            graph,
            csr,
            WANG_K,
        ),
    ]
    payload = {
        "benchmark": "baseline partitioners, dict reference vs CSR kernel",
        "graph": {
            "num_vertices": NUM_VERTICES,
            "num_edges": int(edges.shape[0]),
            "kind": "planted-partition community graph",
            "community_size": COMMUNITY_SIZE,
            "seed": GRAPH_SEED,
        },
        "results": rows,
        "min_speedup_asserted": MIN_SPEEDUP,
    }
    write_bench(BENCH_PATH, payload)
    print()
    print(json.dumps(payload, indent=2))
    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, row
