"""Shared I/O helpers for the ``BENCH_*.json`` benchmark artifacts.

Every ``benchmarks/test_*_speed.py`` module records its numbers in a
``BENCH_<name>.json`` file at the repo root so the performance trajectory
is tracked from PR to PR.  The conventions live here once instead of
being copy-pasted into every benchmark:

* :func:`bench_path` — artifact location (repo root, next to README);
* :func:`env_int` / :func:`env_float` — environment-variable relaxation
  knobs: shared CI runners have noisy wall clocks and may loosen a
  speedup floor or shrink a workload (see ``.github/workflows/ci.yml``)
  without touching the dedicated-machine contract baked into the code;
* :func:`host_metadata` — the host facts that make a recorded number
  interpretable later (CPU count, platform, Python version), collected
  once per process and reused so every artifact written in one run
  carries the identical block;
* :func:`write_bench` — atomic JSON write (temp file + fsync + rename,
  via :func:`repro.graph.io.atomic_write_text`) that injects the host
  metadata under the ``"host"`` key when the payload has none, and
  refuses NaN/inf metric values: a benchmark that produced a non-finite
  number has a measurement bug, and ``NaN`` would silently pass any
  ``>=`` floor comparison downstream.
"""

from __future__ import annotations

import functools
import json
import math
import os
import platform
from pathlib import Path

from repro.graph.io import atomic_write_text

#: Repository root — BENCH_*.json artifacts live here.
REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_path(filename: str) -> Path:
    """Absolute path of a ``BENCH_*.json`` artifact at the repo root."""
    return REPO_ROOT / filename


def env_int(name: str, default: int) -> int:
    """Integer knob from the environment (workload sizes, repeats)."""
    return int(os.environ.get(name, str(default)))


def env_float(name: str, default: float) -> float:
    """Float knob from the environment (speedup floors, budgets)."""
    return float(os.environ.get(name, str(default)))


@functools.lru_cache(maxsize=1)
def _host_metadata_once() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def host_metadata() -> dict:
    """Host facts recorded alongside every benchmark payload.

    Collected once per process (``platform.platform()`` shells out to
    ``uname`` internals on first call) and copied on the way out so
    callers can annotate their own view without corrupting the cache.
    """
    return dict(_host_metadata_once())


def _check_finite(value, key_path: str) -> None:
    """Reject NaN/inf anywhere in a benchmark payload, naming the key."""
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(
            f"benchmark payload contains non-finite value {value!r} at "
            f"{key_path!r}; refusing to record it"
        )
    if isinstance(value, dict):
        for key, child in value.items():
            _check_finite(child, f"{key_path}.{key}")
    elif isinstance(value, (list, tuple)):
        for index, child in enumerate(value):
            _check_finite(child, f"{key_path}[{index}]")


def write_bench(path: Path | str, payload: dict) -> None:
    """Atomically write ``payload`` (plus host metadata) as indented JSON.

    Raises :class:`ValueError` if any metric value in the payload is NaN
    or infinite — such a number means the benchmark mis-measured, and a
    recorded ``NaN`` would silently defeat every later floor comparison.
    """
    enriched = dict(payload)
    enriched.setdefault("host", host_metadata())
    for key, value in enriched.items():
        _check_finite(value, key)
    atomic_write_text(Path(path), json.dumps(enriched, indent=2) + "\n")
