"""Shared I/O helpers for the ``BENCH_*.json`` benchmark artifacts.

Every ``benchmarks/test_*_speed.py`` module records its numbers in a
``BENCH_<name>.json`` file at the repo root so the performance trajectory
is tracked from PR to PR.  The conventions live here once instead of
being copy-pasted into every benchmark:

* :func:`bench_path` — artifact location (repo root, next to README);
* :func:`env_int` / :func:`env_float` — environment-variable relaxation
  knobs: shared CI runners have noisy wall clocks and may loosen a
  speedup floor or shrink a workload (see ``.github/workflows/ci.yml``)
  without touching the dedicated-machine contract baked into the code;
* :func:`host_metadata` — the host facts that make a recorded number
  interpretable later (CPU count, platform, Python version);
* :func:`write_bench` — atomic JSON write (temp file + fsync + rename,
  via :func:`repro.graph.io.atomic_write_text`) that injects the host
  metadata under the ``"host"`` key when the payload has none.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

from repro.graph.io import atomic_write_text

#: Repository root — BENCH_*.json artifacts live here.
REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_path(filename: str) -> Path:
    """Absolute path of a ``BENCH_*.json`` artifact at the repo root."""
    return REPO_ROOT / filename


def env_int(name: str, default: int) -> int:
    """Integer knob from the environment (workload sizes, repeats)."""
    return int(os.environ.get(name, str(default)))


def env_float(name: str, default: float) -> float:
    """Float knob from the environment (speedup floors, budgets)."""
    return float(os.environ.get(name, str(default)))


def host_metadata() -> dict:
    """Host facts recorded alongside every benchmark payload."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def write_bench(path: Path | str, payload: dict) -> None:
    """Atomically write ``payload`` (plus host metadata) as indented JSON."""
    enriched = dict(payload)
    enriched.setdefault("host", host_metadata())
    atomic_write_text(Path(path), json.dumps(enriched, indent=2) + "\n")
