"""Serving-layer benchmark: lookup QPS, churn quality, swap latency.

Exercises the online sharding service (:mod:`repro.serving`) the way a
graph management system would — and records the numbers in
``BENCH_serving.json`` at the repo root so the serving performance
trajectory is tracked from PR to PR:

* **lookup throughput** — batched vertex→partition lookups over the real
  TCP JSON-lines protocol against a live service, in both per-request
  (one request in flight) and pipelined (send-all-then-read-all) client
  modes; the sustained lookups/sec floors are asserted
  (``SERVING_BENCH_MIN_QPS`` / ``SERVING_BENCH_MIN_BATCHED_QPS`` relax
  them on shared runners).
* **pipelining speedup** — single-vertex lookups per-request vs
  pipelined over the same wire; the server drains the socket buffer,
  fuses the run into one vectorized ``lookup_many`` and coalesces all
  responses into one write, so the pipelined mode must be at least
  ``SERVING_BENCH_MIN_PIPELINE_SPEEDUP``× faster.
* **dense vs sparse snapshot** — in-process ``lookup_many`` against the
  same data held contiguously (O(1) direct index) and gapped
  (``searchsorted``); the dense representation must win by at least
  ``SERVING_BENCH_MIN_DENSE_SPEEDUP``×.
* **snapshot-swap latency** — the atomic version swap is the only
  publish-side work lookups can ever observe; its worst case across all
  repartitions of the run is asserted under
  ``SERVING_BENCH_MAX_SWAP_SECONDS``.
* **steady-state quality under churn** — sustained adversarial churn
  (each generator of :mod:`repro.graph.dynamic` in rotation) with a
  background-style repartition after each burst must keep the published
  locality ``phi`` within ``SERVING_BENCH_PHI_MARGIN`` of a full
  from-scratch FastSpinner recompute on the final graph — the paper's
  Section V-C claim, measured end to end through the serving path.
* **stability sweep** — one row per churn generator comparing the
  incremental repartition against the pre-churn assignment
  (:func:`repro.metrics.stability.partitioning_difference`), recording
  how much of the graph each adversarial shape actually moves.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_serving_speed.py -s
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.graph.generators import powerlaw_cluster
from repro.graph.dynamic import bursty_new_edges, hub_birth_edges, random_new_edges
from repro.metrics.stability import partitioning_difference
from repro.serving import (
    AssignmentSnapshot,
    AssignmentStore,
    ChurnPipeline,
    ServingConfig,
    ShardingService,
    send_requests,
)
from bench_io import bench_path, env_float, env_int, write_bench

BENCH_PATH = bench_path("BENCH_serving.json")

NUM_VERTICES = env_int("SERVING_BENCH_NUM_VERTICES", 20000)
NUM_PARTITIONS = env_int("SERVING_BENCH_NUM_PARTITIONS", 8)
SEED = env_int("SERVING_BENCH_SEED", 42)
BATCH = env_int("SERVING_BENCH_BATCH", 1024)
#: Minimum sustained batched-lookup throughput over TCP (lookups/sec),
#: measured in the sequential per-request client mode.
MIN_QPS = env_float("SERVING_BENCH_MIN_QPS", 20000.0)
#: Minimum batched-lookup throughput with a pipelined client (lookups/sec).
MIN_BATCHED_QPS = env_float("SERVING_BENCH_MIN_BATCHED_QPS", 1_560_000.0)
#: Pipelined single-lookup QPS must beat per-request by at least this.
MIN_PIPELINE_SPEEDUP = env_float("SERVING_BENCH_MIN_PIPELINE_SPEEDUP", 3.0)
#: Dense direct-index lookup_many must beat searchsorted by at least this.
MIN_DENSE_SPEEDUP = env_float("SERVING_BENCH_MIN_DENSE_SPEEDUP", 1.5)
#: Requests kept in flight per pipelined burst (<= server max_pipeline_batch).
PIPELINE_DEPTH = env_int("SERVING_BENCH_PIPELINE_DEPTH", 512)
#: Worst-case tolerated snapshot-swap latency (seconds).
MAX_SWAP_SECONDS = env_float("SERVING_BENCH_MAX_SWAP_SECONDS", 0.5)
#: Steady-state phi must stay within this margin of a full recompute.
PHI_MARGIN = env_float("SERVING_BENCH_PHI_MARGIN", 0.05)
CHURN_ROUNDS = env_int("SERVING_BENCH_CHURN_ROUNDS", 6)
CHURN_FRACTION = env_float("SERVING_BENCH_CHURN_FRACTION", 0.02)
#: Wall-clock the QPS phase keeps hammering the service for.
QPS_SECONDS = env_float("SERVING_BENCH_QPS_SECONDS", 1.0)

CHURN_GENERATORS = (
    ("random", random_new_edges),
    ("bursty", bursty_new_edges),
    ("hub_birth", hub_birth_edges),
)


def _start_service(service: ShardingService) -> tuple[threading.Thread, int]:
    """Run ``serve_forever`` on a daemon thread; return (thread, port)."""
    ready = threading.Event()
    bound = {}

    def _on_ready(started: ShardingService) -> None:
        bound["port"] = started.port
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve_forever(ready=_on_ready)),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=60), "service did not come up"
    return thread, bound["port"]


def _measure_qps(port: int, num_vertices: int) -> dict:
    """Hammer batched lookups over one TCP connection for ~QPS_SECONDS."""
    rng = np.random.default_rng(SEED)
    batches = [
        rng.integers(0, num_vertices, size=BATCH).tolist() for _ in range(8)
    ]
    total = 0
    rounds = 0
    start = time.perf_counter()
    while time.perf_counter() - start < QPS_SECONDS:
        responses = send_requests(
            "127.0.0.1",
            port,
            [{"op": "lookup", "vertices": batch} for batch in batches],
        )
        for response in responses:
            assert response["ok"], response
            total += len(response["partitions"])
        rounds += len(batches)
    elapsed = time.perf_counter() - start
    return {
        "mode": "per_request",
        "batch": BATCH,
        "requests": rounds,
        "lookups": total,
        "seconds": round(elapsed, 4),
        "lookups_per_second": round(total / elapsed, 1),
    }


def _measure_batched_pipelined(port: int, num_vertices: int) -> dict:
    """Pipelined batched lookups: prebuilt request bytes, one burst in flight.

    The client cost is deliberately minimal — requests are serialized
    once up front and responses are length-counted, not parsed, after a
    first fully-verified round — so the number approximates the server's
    data-plane ceiling rather than ``json.loads`` on the client.
    """
    rng = np.random.default_rng(SEED)
    batches = [
        rng.integers(0, num_vertices, size=BATCH).tolist() for _ in range(8)
    ]
    burst = b"".join(
        json.dumps({"op": "lookup", "vertices": batch}).encode("utf-8") + b"\n"
        for batch in batches
    )
    total = 0
    rounds = 0
    with socket.create_connection(("127.0.0.1", port), timeout=60) as conn:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = conn.makefile("rb")
        # Verification round (not timed): every response parses and is ok.
        conn.sendall(burst)
        for batch in batches:
            response = json.loads(reader.readline())
            assert response["ok"] and len(response["partitions"]) == len(batch)
        start = time.perf_counter()
        while time.perf_counter() - start < QPS_SECONDS:
            conn.sendall(burst)
            for batch in batches:
                assert reader.readline().endswith(b"\n")
                total += len(batch)
            rounds += len(batches)
        elapsed = time.perf_counter() - start
    return {
        "mode": "pipelined",
        "batch": BATCH,
        "requests": rounds,
        "lookups": total,
        "seconds": round(elapsed, 4),
        "lookups_per_second": round(total / elapsed, 1),
    }


def _measure_single_lookup_modes(port: int, num_vertices: int) -> dict:
    """Single-vertex lookups: sequential per-request vs pipelined bursts.

    Both modes use the same prebuilt request lines over a raw socket, so
    the only variable is how many requests are in flight: one (classic
    request/response) vs ``PIPELINE_DEPTH`` (the server drains the burst,
    fuses it into one vectorized ``lookup_many`` and answers with one
    coalesced write).
    """
    rng = np.random.default_rng(SEED + 1)
    lines = [
        json.dumps({"op": "lookup", "vertex": int(v)}).encode("utf-8") + b"\n"
        for v in rng.integers(0, num_vertices, size=PIPELINE_DEPTH)
    ]
    burst = b"".join(lines)
    rows = {}
    for mode in ("per_request", "pipelined"):
        done = 0
        with socket.create_connection(("127.0.0.1", port), timeout=60) as conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = conn.makefile("rb")
            # Verify once (not timed) that responses are well-formed.
            conn.sendall(lines[0])
            assert json.loads(reader.readline())["ok"]
            start = time.perf_counter()
            while time.perf_counter() - start < QPS_SECONDS:
                if mode == "pipelined":
                    conn.sendall(burst)
                    for _ in lines:
                        assert reader.readline().endswith(b"\n")
                    done += len(lines)
                else:
                    conn.sendall(lines[done % len(lines)])
                    assert reader.readline().endswith(b"\n")
                    done += 1
            elapsed = time.perf_counter() - start
        rows[mode] = {
            "requests": done,
            "seconds": round(elapsed, 4),
            "lookups_per_second": round(done / elapsed, 1),
        }
    speedup = (
        rows["pipelined"]["lookups_per_second"]
        / rows["per_request"]["lookups_per_second"]
    )
    return {
        "pipeline_depth": PIPELINE_DEPTH,
        "per_request": rows["per_request"],
        "pipelined": rows["pipelined"],
        "speedup": round(speedup, 2),
    }


def _measure_store_paths() -> dict:
    """In-process ``lookup_many``: dense direct index vs searchsorted.

    Both snapshots hold the *same* contiguous id range; the sparse row
    forces the ``searchsorted`` probe on identical data by clearing the
    dense base, so the measured delta is purely the representation.
    """
    rng = np.random.default_rng(SEED + 2)
    ids = np.arange(NUM_VERTICES, dtype=np.int64)
    labels = rng.integers(0, NUM_PARTITIONS, size=NUM_VERTICES).astype(np.int64)
    queries = [
        rng.integers(0, NUM_VERTICES, size=BATCH).astype(np.int64)
        for _ in range(32)
    ]
    rows = {}
    for mode in ("dense", "sparse"):
        snapshot = AssignmentSnapshot(1, ids, labels, NUM_PARTITIONS)
        if mode == "sparse":
            snapshot._dense_base = None  # force the searchsorted path
        assert snapshot.is_dense == (mode == "dense")
        for query in queries:  # warm-up, also sanity-checks the path
            snapshot.lookup_many(query)
        done = 0
        start = time.perf_counter()
        while time.perf_counter() - start < QPS_SECONDS / 2:
            for query in queries:
                snapshot.lookup_many(query)
                done += query.shape[0]
        elapsed = time.perf_counter() - start
        rows[mode] = {
            "lookups": done,
            "seconds": round(elapsed, 4),
            "lookups_per_second": round(done / elapsed, 1),
        }
    speedup = (
        rows["dense"]["lookups_per_second"] / rows["sparse"]["lookups_per_second"]
    )
    return {
        "batch": BATCH,
        "dense": rows["dense"],
        "sparse": rows["sparse"],
        "speedup": round(speedup, 2),
    }


def _steady_state_churn(graph, pipeline: ChurnPipeline) -> dict:
    """Sustained adversarial churn with a repartition after every burst."""
    max_swap = 0.0
    migration_fractions = []
    for round_index in range(CHURN_ROUNDS):
        _, generator = CHURN_GENERATORS[round_index % len(CHURN_GENERATORS)]
        delta = generator(graph, CHURN_FRACTION, seed=SEED + round_index)
        pipeline.ingest(delta)
        report = pipeline.repartition_now()
        max_swap = max(max_swap, report.swap_seconds)
        migration_fractions.append(report.migration_fraction)
    # The last report's phi is exact on the frozen graph, which after a
    # synchronous repartition *is* the final live graph.
    full = FastSpinner(SpinnerConfig(seed=SEED)).partition(graph, NUM_PARTITIONS)
    return {
        "rounds": CHURN_ROUNDS,
        "fraction_per_round": CHURN_FRACTION,
        "final_edges": graph.num_edges,
        "phi_serving": round(report.phi, 4),
        "phi_full_recompute": round(float(full.phi), 4),
        "phi_margin": PHI_MARGIN,
        "max_swap_seconds": round(max_swap, 6),
        "mean_migration_fraction": round(
            float(np.mean(migration_fractions)), 4
        ),
        "version": pipeline.store.version,
    }


def _stability_sweep() -> list[dict]:
    """One incremental-repartition stability row per churn generator."""
    rows = []
    for name, generator in CHURN_GENERATORS:
        graph = powerlaw_cluster(
            NUM_VERTICES // 4, edges_per_vertex=8, triangle_probability=0.5, seed=SEED
        )
        store = AssignmentStore(NUM_PARTITIONS)
        pipeline = ChurnPipeline(
            graph, store, ServingConfig(num_partitions=NUM_PARTITIONS, spinner=SpinnerConfig(seed=SEED))
        )
        before_report = pipeline.bootstrap()
        before = store.current().to_assignment()
        delta = generator(graph, 0.05, seed=SEED)
        pipeline.ingest(delta)
        report = pipeline.repartition_now()
        after = store.current().to_assignment()
        rows.append(
            {
                "generator": name,
                "new_edges": delta.num_new_edges,
                "new_vertices": len(delta.added_vertices),
                "phi_before": round(before_report.phi, 4),
                "phi_after": round(report.phi, 4),
                "difference": round(partitioning_difference(before, after), 4),
                "migration_fraction": report.migration_fraction,
            }
        )
    return rows


def test_serving_speed() -> None:
    """Benchmark the service end to end and write ``BENCH_serving.json``."""
    graph = powerlaw_cluster(
        NUM_VERTICES, edges_per_vertex=10, triangle_probability=0.7, seed=SEED
    )
    num_vertices = graph.num_vertices
    num_edges = graph.num_edges
    config = ServingConfig(
        num_partitions=NUM_PARTITIONS,
        edge_threshold=None,
        spinner=SpinnerConfig(seed=SEED),
        log_interval=0.0,
    )
    service = ShardingService(graph, config)
    bootstrap_report = service.last_report
    thread, port = _start_service(service)
    try:
        lookup = _measure_qps(port, num_vertices)
        lookup_pipelined = _measure_batched_pipelined(port, num_vertices)
        single = _measure_single_lookup_modes(port, num_vertices)
        (stats_response,) = send_requests("127.0.0.1", port, [{"op": "stats"}])
        stats = stats_response["stats"]
    finally:
        send_requests("127.0.0.1", port, [{"op": "shutdown"}])
        thread.join(timeout=60)
    lookup["latency_p50_s"] = stats["latency_p50_s"]
    lookup["latency_p99_s"] = stats["latency_p99_s"]
    assert stats["pipeline_depth_max"] >= 2.0  # the bursts really pipelined
    store_paths = _measure_store_paths()

    churn = _steady_state_churn(graph, service.pipeline)
    churn["max_swap_seconds"] = max(
        churn["max_swap_seconds"], bootstrap_report.swap_seconds
    )
    sweep = _stability_sweep()

    payload = {
        "benchmark": "online sharding service",
        "workload": {
            "num_vertices": num_vertices,
            "num_edges": num_edges,
            "num_partitions": NUM_PARTITIONS,
            "generator": "powerlaw-cluster (10 edges/vertex, p_triangle 0.7)",
            "seed": SEED,
        },
        "floors": {
            "min_qps": MIN_QPS,
            "min_batched_qps": MIN_BATCHED_QPS,
            "min_pipeline_speedup": MIN_PIPELINE_SPEEDUP,
            "min_dense_speedup": MIN_DENSE_SPEEDUP,
        },
        "lookup": lookup,
        "lookup_pipelined": lookup_pipelined,
        "single_lookup_modes": single,
        "store_paths": store_paths,
        "churn": churn,
        "stability_sweep": sweep,
    }
    write_bench(BENCH_PATH, payload)
    print(
        f"\nserving: {lookup['lookups_per_second']:.0f} lookups/s per-request, "
        f"{lookup_pipelined['lookups_per_second']:.0f} pipelined over TCP; "
        f"single-lookup pipelining x{single['speedup']:.1f}, dense store "
        f"x{store_paths['speedup']:.2f}; steady-state phi "
        f"{churn['phi_serving']:.4f} vs full recompute "
        f"{churn['phi_full_recompute']:.4f}, max swap "
        f"{churn['max_swap_seconds'] * 1e3:.2f}ms -> {BENCH_PATH.name}"
    )

    assert lookup["lookups_per_second"] >= MIN_QPS
    assert lookup_pipelined["lookups_per_second"] >= MIN_BATCHED_QPS
    assert single["speedup"] >= MIN_PIPELINE_SPEEDUP
    assert store_paths["speedup"] >= MIN_DENSE_SPEEDUP
    assert churn["max_swap_seconds"] <= MAX_SWAP_SECONDS
    assert churn["phi_serving"] >= churn["phi_full_recompute"] - PHI_MARGIN
    for row in sweep:
        assert 0.0 <= row["difference"] <= 1.0
