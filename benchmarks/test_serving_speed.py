"""Serving-layer benchmark: lookup QPS, churn quality, swap latency.

Exercises the online sharding service (:mod:`repro.serving`) the way a
graph management system would — and records the numbers in
``BENCH_serving.json`` at the repo root so the serving performance
trajectory is tracked from PR to PR:

* **lookup throughput** — batched vertex→partition lookups over the real
  TCP JSON-lines protocol against a live service; the sustained
  lookups/sec floor is asserted (``SERVING_BENCH_MIN_QPS`` relaxes it on
  shared runners).
* **snapshot-swap latency** — the atomic version swap is the only
  publish-side work lookups can ever observe; its worst case across all
  repartitions of the run is asserted under
  ``SERVING_BENCH_MAX_SWAP_SECONDS``.
* **steady-state quality under churn** — sustained adversarial churn
  (each generator of :mod:`repro.graph.dynamic` in rotation) with a
  background-style repartition after each burst must keep the published
  locality ``phi`` within ``SERVING_BENCH_PHI_MARGIN`` of a full
  from-scratch FastSpinner recompute on the final graph — the paper's
  Section V-C claim, measured end to end through the serving path.
* **stability sweep** — one row per churn generator comparing the
  incremental repartition against the pre-churn assignment
  (:func:`repro.metrics.stability.partitioning_difference`), recording
  how much of the graph each adversarial shape actually moves.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_serving_speed.py -s
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.graph.generators import powerlaw_cluster
from repro.graph.dynamic import bursty_new_edges, hub_birth_edges, random_new_edges
from repro.metrics.stability import partitioning_difference
from repro.serving import (
    AssignmentStore,
    ChurnPipeline,
    ServingConfig,
    ShardingService,
    send_requests,
)
from bench_io import bench_path, env_float, env_int, write_bench

BENCH_PATH = bench_path("BENCH_serving.json")

NUM_VERTICES = env_int("SERVING_BENCH_NUM_VERTICES", 20000)
NUM_PARTITIONS = env_int("SERVING_BENCH_NUM_PARTITIONS", 8)
SEED = env_int("SERVING_BENCH_SEED", 42)
BATCH = env_int("SERVING_BENCH_BATCH", 1024)
#: Minimum sustained batched-lookup throughput over TCP (lookups/sec).
MIN_QPS = env_float("SERVING_BENCH_MIN_QPS", 20000.0)
#: Worst-case tolerated snapshot-swap latency (seconds).
MAX_SWAP_SECONDS = env_float("SERVING_BENCH_MAX_SWAP_SECONDS", 0.5)
#: Steady-state phi must stay within this margin of a full recompute.
PHI_MARGIN = env_float("SERVING_BENCH_PHI_MARGIN", 0.05)
CHURN_ROUNDS = env_int("SERVING_BENCH_CHURN_ROUNDS", 6)
CHURN_FRACTION = env_float("SERVING_BENCH_CHURN_FRACTION", 0.02)
#: Wall-clock the QPS phase keeps hammering the service for.
QPS_SECONDS = env_float("SERVING_BENCH_QPS_SECONDS", 1.0)

CHURN_GENERATORS = (
    ("random", random_new_edges),
    ("bursty", bursty_new_edges),
    ("hub_birth", hub_birth_edges),
)


def _start_service(service: ShardingService) -> tuple[threading.Thread, int]:
    """Run ``serve_forever`` on a daemon thread; return (thread, port)."""
    ready = threading.Event()
    bound = {}

    def _on_ready(started: ShardingService) -> None:
        bound["port"] = started.port
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve_forever(ready=_on_ready)),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=60), "service did not come up"
    return thread, bound["port"]


def _measure_qps(port: int, num_vertices: int) -> dict:
    """Hammer batched lookups over one TCP connection for ~QPS_SECONDS."""
    rng = np.random.default_rng(SEED)
    batches = [
        rng.integers(0, num_vertices, size=BATCH).tolist() for _ in range(8)
    ]
    total = 0
    rounds = 0
    start = time.perf_counter()
    while time.perf_counter() - start < QPS_SECONDS:
        responses = send_requests(
            "127.0.0.1",
            port,
            [{"op": "lookup", "vertices": batch} for batch in batches],
        )
        for response in responses:
            assert response["ok"], response
            total += len(response["partitions"])
        rounds += len(batches)
    elapsed = time.perf_counter() - start
    return {
        "batch": BATCH,
        "requests": rounds,
        "lookups": total,
        "seconds": round(elapsed, 4),
        "lookups_per_second": round(total / elapsed, 1),
    }


def _steady_state_churn(graph, pipeline: ChurnPipeline) -> dict:
    """Sustained adversarial churn with a repartition after every burst."""
    max_swap = 0.0
    migration_fractions = []
    for round_index in range(CHURN_ROUNDS):
        _, generator = CHURN_GENERATORS[round_index % len(CHURN_GENERATORS)]
        delta = generator(graph, CHURN_FRACTION, seed=SEED + round_index)
        pipeline.ingest(delta)
        report = pipeline.repartition_now()
        max_swap = max(max_swap, report.swap_seconds)
        migration_fractions.append(report.migration_fraction)
    # The last report's phi is exact on the frozen graph, which after a
    # synchronous repartition *is* the final live graph.
    full = FastSpinner(SpinnerConfig(seed=SEED)).partition(graph, NUM_PARTITIONS)
    return {
        "rounds": CHURN_ROUNDS,
        "fraction_per_round": CHURN_FRACTION,
        "final_edges": graph.num_edges,
        "phi_serving": round(report.phi, 4),
        "phi_full_recompute": round(float(full.phi), 4),
        "phi_margin": PHI_MARGIN,
        "max_swap_seconds": round(max_swap, 6),
        "mean_migration_fraction": round(
            float(np.mean(migration_fractions)), 4
        ),
        "version": pipeline.store.version,
    }


def _stability_sweep() -> list[dict]:
    """One incremental-repartition stability row per churn generator."""
    rows = []
    for name, generator in CHURN_GENERATORS:
        graph = powerlaw_cluster(
            NUM_VERTICES // 4, edges_per_vertex=8, triangle_probability=0.5, seed=SEED
        )
        store = AssignmentStore(NUM_PARTITIONS)
        pipeline = ChurnPipeline(
            graph, store, ServingConfig(num_partitions=NUM_PARTITIONS, spinner=SpinnerConfig(seed=SEED))
        )
        before_report = pipeline.bootstrap()
        before = store.current().to_assignment()
        delta = generator(graph, 0.05, seed=SEED)
        pipeline.ingest(delta)
        report = pipeline.repartition_now()
        after = store.current().to_assignment()
        rows.append(
            {
                "generator": name,
                "new_edges": delta.num_new_edges,
                "new_vertices": len(delta.added_vertices),
                "phi_before": round(before_report.phi, 4),
                "phi_after": round(report.phi, 4),
                "difference": round(partitioning_difference(before, after), 4),
                "migration_fraction": report.migration_fraction,
            }
        )
    return rows


def test_serving_speed() -> None:
    """Benchmark the service end to end and write ``BENCH_serving.json``."""
    graph = powerlaw_cluster(
        NUM_VERTICES, edges_per_vertex=10, triangle_probability=0.7, seed=SEED
    )
    num_vertices = graph.num_vertices
    num_edges = graph.num_edges
    config = ServingConfig(
        num_partitions=NUM_PARTITIONS,
        edge_threshold=None,
        spinner=SpinnerConfig(seed=SEED),
        log_interval=0.0,
    )
    service = ShardingService(graph, config)
    bootstrap_report = service.last_report
    thread, port = _start_service(service)
    try:
        lookup = _measure_qps(port, num_vertices)
        (stats_response,) = send_requests("127.0.0.1", port, [{"op": "stats"}])
        stats = stats_response["stats"]
    finally:
        send_requests("127.0.0.1", port, [{"op": "shutdown"}])
        thread.join(timeout=60)
    lookup["latency_p50_s"] = stats["latency_p50_s"]
    lookup["latency_p99_s"] = stats["latency_p99_s"]

    churn = _steady_state_churn(graph, service.pipeline)
    churn["max_swap_seconds"] = max(
        churn["max_swap_seconds"], bootstrap_report.swap_seconds
    )
    sweep = _stability_sweep()

    payload = {
        "benchmark": "online sharding service",
        "workload": {
            "num_vertices": num_vertices,
            "num_edges": num_edges,
            "num_partitions": NUM_PARTITIONS,
            "generator": "powerlaw-cluster (10 edges/vertex, p_triangle 0.7)",
            "seed": SEED,
        },
        "min_qps_floor": MIN_QPS,
        "lookup": lookup,
        "churn": churn,
        "stability_sweep": sweep,
    }
    write_bench(BENCH_PATH, payload)
    print(
        f"\nserving: {lookup['lookups_per_second']:.0f} lookups/s over TCP, "
        f"steady-state phi {churn['phi_serving']:.4f} vs full recompute "
        f"{churn['phi_full_recompute']:.4f}, max swap "
        f"{churn['max_swap_seconds'] * 1e3:.2f}ms -> {BENCH_PATH.name}"
    )

    assert lookup["lookups_per_second"] >= MIN_QPS
    assert churn["max_swap_seconds"] <= MAX_SWAP_SECONDS
    assert churn["phi_serving"] >= churn["phi_full_recompute"] - PHI_MARGIN
    for row in sweep:
        assert 0.0 <= row["difference"] <= 1.0
