"""Figure 6 — scalability: runtime vs graph size, workers and partitions."""

from benchmarks.conftest import print_rows
from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c


def test_fig6a_runtime_vs_graph_size(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig6a(vertex_counts=(1000, 2000, 4000, 8000, 16000), scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 6(a) — first-iteration runtime vs |V| (Watts-Strogatz)", rows)
    # Near-linear: runtime grows with the graph, and 16x more vertices cost
    # far less than 100x more time.
    assert rows[-1]["runtime_ms"] > rows[0]["runtime_ms"]
    assert rows[-1]["runtime_ms"] < rows[0]["runtime_ms"] * 120


def test_fig6b_runtime_vs_workers(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig6b(worker_counts=(2, 4, 8, 16), num_vertices=3000, scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 6(b) — simulated first-iteration time vs workers", rows)
    # More workers -> shorter superstep (the paper reports ~7.6x for 7.6x).
    assert rows[-1]["simulated_time"] < rows[0]["simulated_time"]
    speedup = rows[0]["simulated_time"] / rows[-1]["simulated_time"]
    assert speedup > 3.0


def test_fig6c_runtime_vs_partitions(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig6c(partition_counts=(2, 4, 8, 16, 32, 64), num_vertices=8000,
                          scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 6(c) — first-iteration runtime vs number of partitions", rows)
    # Cost grows with k (the per-vertex heuristic is proportional to k) but
    # stays near-linear.  The k=2 and k=64 wall clocks are close enough that
    # single-core scheduling noise can invert them (+-30% on this class of
    # machine), so allow a small tolerance on the ordering.
    assert rows[-1]["runtime_ms"] >= rows[0]["runtime_ms"] * 0.8
