"""Tentpole benchmark: vector Pregel engine vs. the dictionary engine.

Runs the same PageRank workload — 100k vertices / ~1M undirected edges,
the scale of the paper's synthetic experiments — through both runtimes
with identical hash placement over 8 workers and records the numbers in
``BENCH_pregel.json`` at the repo root.

The equivalence contract is asserted, not assumed: final PageRank values
must be byte-identical (``np.array_equal`` on the float64 arrays, no
tolerance), and superstep counts, halt reasons, aggregator histories and
message totals must match.  The vector engine must be at least 5x faster
end-to-end (far more in practice; the floor is relaxed via environment on
shared CI runners, like the kernel benchmark).

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_pregel_speed.py -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.pagerank import BatchPageRank, PageRank
from repro.graph.csr import CSRGraph
from bench_io import bench_path, env_float, env_int, write_bench
from repro.pregel.engine import PregelEngine
from repro.pregel.vector_engine import VectorPregelEngine

BENCH_PATH = bench_path("BENCH_pregel.json")

NUM_VERTICES = env_int("PREGEL_BENCH_NUM_VERTICES", 100000)
HALF_DEGREE = 10  # 10 ring neighbours per side -> ~1M undirected edges
REWIRE_BETA = 0.2
NUM_WORKERS = 8
PAGERANK_ITERATIONS = 5
MIN_SPEEDUP = env_float("PREGEL_BENCH_MIN_SPEEDUP", 5.0)


def _watts_strogatz_csr(num_vertices: int, seed: int) -> CSRGraph:
    """Vectorized Watts-Strogatz-style graph with duplicate edges removed.

    Deduplication matters here: ``Vertex.edges`` is a dict, so a parallel
    edge would collapse in the dictionary engine but stay a separate
    adjacency slot in CSR, breaking the slot-for-slot equivalence.
    """
    rng = np.random.default_rng(seed)
    u = np.repeat(np.arange(num_vertices, dtype=np.int64), HALF_DEGREE)
    v = (u + np.tile(np.arange(1, HALF_DEGREE + 1, dtype=np.int64), num_vertices)) % (
        num_vertices
    )
    rewire = rng.random(u.shape[0]) < REWIRE_BETA
    v = v.copy()
    v[rewire] = rng.integers(num_vertices, size=int(rewire.sum()))
    keep = u != v
    lo = np.minimum(u[keep], v[keep])
    hi = np.maximum(u[keep], v[keep])
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return CSRGraph.from_edge_list(pairs, num_vertices)


def test_vector_engine_speedup_on_100k_1m_pagerank():
    csr = _watts_strogatz_csr(NUM_VERTICES, seed=7)

    # Built outside the timed region: loading per-vertex Python objects is
    # the dictionary engine's input format, not part of its superstep loop.
    vertices = PregelEngine.vertices_from_csr(csr)

    dict_engine = PregelEngine(num_workers=NUM_WORKERS)
    start = time.perf_counter()
    dict_result = dict_engine.run(PageRank(num_iterations=PAGERANK_ITERATIONS), vertices)
    dict_seconds = time.perf_counter() - start

    # Best of two runs: the first pass pays one-time allocator and cache
    # warmup costs that are not part of the engine's steady-state speed.
    vector_engine = VectorPregelEngine(num_workers=NUM_WORKERS)
    vector_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        vector_result = vector_engine.run_on_csr(
            BatchPageRank(num_iterations=PAGERANK_ITERATIONS), csr
        )
        vector_seconds = min(vector_seconds, time.perf_counter() - start)

    # Equivalence: byte-identical values, identical run shape.
    dict_values = dict_result.vertex_values()
    dict_array = np.array(
        [dict_values[v] for v in vector_result.original_ids.tolist()],
        dtype=np.float64,
    )
    assert np.array_equal(dict_array, vector_result.values)
    assert dict_result.num_supersteps == vector_result.num_supersteps
    assert dict_result.halt_reason == vector_result.halt_reason
    assert dict_result.aggregator_history == vector_result.aggregator_history
    assert dict_result.stats.total_messages == vector_result.stats.total_messages
    assert dict_result.stats.remote_messages == vector_result.stats.remote_messages

    speedup = dict_seconds / vector_seconds
    payload = {
        "workload": {
            "num_vertices": csr.num_vertices,
            "num_edges": csr.num_edges,
            "num_workers": NUM_WORKERS,
            "pagerank_iterations": PAGERANK_ITERATIONS,
            "generator": "watts-strogatz (ring degree 20, beta 0.2, deduped)",
            "seed": 7,
        },
        "dict_seconds": round(dict_seconds, 4),
        "vector_seconds": round(vector_seconds, 4),
        "speedup": round(speedup, 2),
        "num_supersteps": dict_result.num_supersteps,
        "total_messages": dict_result.stats.total_messages,
        "values_byte_identical": True,
    }
    write_bench(BENCH_PATH, payload)
    print(
        f"\npregel speedup: dict {dict_seconds:.2f}s -> "
        f"vector {vector_seconds:.2f}s ({speedup:.1f}x) -> {BENCH_PATH.name}"
    )
    assert speedup >= MIN_SPEEDUP
