"""Figure 3 — locality vs number of partitions, and improvement over hash."""

from benchmarks.conftest import print_rows
from repro.experiments.fig3 import run_fig3


def test_fig3_locality(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig3(k_values=(2, 4, 8, 16, 32, 64), scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 3 — phi per graph and k; improvement over hash", rows)

    by_graph: dict[str, list[dict]] = {}
    for row in rows:
        by_graph.setdefault(row["graph"], []).append(row)
    for graph, graph_rows in by_graph.items():
        graph_rows.sort(key=lambda r: r["k"])
        # Fig 3(a): locality decreases (weakly) with more partitions.
        assert graph_rows[0]["phi"] >= graph_rows[-1]["phi"] - 0.05, graph
        # Fig 3(b): Spinner always beats hash partitioning, and the relative
        # improvement grows with k.
        assert all(row["improvement"] > 1.0 for row in graph_rows), graph
        assert graph_rows[-1]["improvement"] > graph_rows[0]["improvement"], graph
