"""Tentpole benchmark: shared-memory parallel executor vs. serial.

Runs the same PageRank workload as ``test_pregel_speed.py`` — 100k
vertices / ~1M undirected edges over 8 simulated workers — through the
vector engine twice: once on the in-process
:class:`~repro.pregel.serial_executor.SerialExecutor` and once on the
:class:`~repro.pregel.shm_executor.SharedMemoryExecutor` with
``parallel=4`` OS processes, and records the numbers in
``BENCH_parallel.json`` at the repo root.

The equivalence contract is asserted, not assumed: final values must be
byte-identical, and superstep counts, halt reasons, aggregator histories
and per-worker message totals must match.

The speedup floor adapts to the machine: on hosts with at least four CPU
cores the parallel run must be at least 2.5x faster end-to-end; on
smaller hosts (such as single-core CI runners, where a wall-clock speedup
is physically impossible) the floor drops to a sanity bound that only
guards against pathological overhead.  Both the floor and the workload
size can be overridden via ``PARALLEL_BENCH_MIN_SPEEDUP`` and
``PARALLEL_BENCH_NUM_VERTICES``; the recorded JSON carries the host's CPU
count so results are interpretable either way.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_parallel_speed.py -s

(The module is spawn-safe: the workload only runs under ``pytest`` or the
``__main__`` guard, so ``REPRO_PARALLEL_START_METHOD=spawn`` re-imports
cleanly in the worker processes.)
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.apps.pagerank import BatchPageRank
from repro.graph.csr import CSRGraph
from bench_io import bench_path, env_float, env_int, write_bench
from repro.pregel.vector_engine import VectorPregelEngine

BENCH_PATH = bench_path("BENCH_parallel.json")

NUM_VERTICES = env_int("PARALLEL_BENCH_NUM_VERTICES", 100000)
HALF_DEGREE = 10  # 10 ring neighbours per side -> ~1M undirected edges
REWIRE_BETA = 0.2
NUM_WORKERS = 8
PARALLEL = 4
PAGERANK_ITERATIONS = 5

#: With fewer cores than shard groups a wall-clock speedup is physically
#: impossible; only guard against pathological overhead there.
_DEFAULT_FLOOR = 2.5 if (os.cpu_count() or 1) >= 4 else 0.05
MIN_SPEEDUP = env_float("PARALLEL_BENCH_MIN_SPEEDUP", _DEFAULT_FLOOR)


def _watts_strogatz_csr(num_vertices: int, seed: int) -> CSRGraph:
    """The deduplicated Watts-Strogatz-style graph of the engine benchmark."""
    rng = np.random.default_rng(seed)
    u = np.repeat(np.arange(num_vertices, dtype=np.int64), HALF_DEGREE)
    v = (u + np.tile(np.arange(1, HALF_DEGREE + 1, dtype=np.int64), num_vertices)) % (
        num_vertices
    )
    rewire = rng.random(u.shape[0]) < REWIRE_BETA
    v = v.copy()
    v[rewire] = rng.integers(num_vertices, size=int(rewire.sum()))
    keep = u != v
    lo = np.minimum(u[keep], v[keep])
    hi = np.maximum(u[keep], v[keep])
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return CSRGraph.from_edge_list(pairs, num_vertices)


def _timed_run(csr: CSRGraph, parallel: int) -> tuple[float, object]:
    """Best of two end-to-end runs (first pass pays warmup costs)."""
    engine = VectorPregelEngine(num_workers=NUM_WORKERS, parallel=parallel)
    best = float("inf")
    result = None
    for _ in range(2):
        start = time.perf_counter()
        result = engine.run_on_csr(
            BatchPageRank(num_iterations=PAGERANK_ITERATIONS), csr
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def test_parallel_executor_speedup_on_100k_1m_pagerank():
    csr = _watts_strogatz_csr(NUM_VERTICES, seed=7)

    serial_seconds, serial_result = _timed_run(csr, parallel=1)
    parallel_seconds, parallel_result = _timed_run(csr, parallel=PARALLEL)

    # Equivalence: byte-identical values, identical run shape and stats.
    assert np.array_equal(serial_result.values, parallel_result.values)
    assert serial_result.num_supersteps == parallel_result.num_supersteps
    assert serial_result.halt_reason == parallel_result.halt_reason
    assert serial_result.aggregator_history == parallel_result.aggregator_history
    assert serial_result.stats.total_messages == parallel_result.stats.total_messages
    assert (
        serial_result.stats.remote_messages == parallel_result.stats.remote_messages
    )

    speedup = serial_seconds / parallel_seconds
    payload = {
        "workload": {
            "num_vertices": csr.num_vertices,
            "num_edges": csr.num_edges,
            "num_workers": NUM_WORKERS,
            "parallel": PARALLEL,
            "pagerank_iterations": PAGERANK_ITERATIONS,
            "generator": "watts-strogatz (ring degree 20, beta 0.2, deduped)",
            "seed": 7,
        },
        "host_cpu_count": os.cpu_count(),
        "min_speedup_floor": MIN_SPEEDUP,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "num_supersteps": serial_result.num_supersteps,
        "total_messages": serial_result.stats.total_messages,
        "values_byte_identical": True,
    }
    write_bench(BENCH_PATH, payload)
    print(
        f"\nparallel speedup: serial {serial_seconds:.2f}s -> "
        f"parallel={PARALLEL} {parallel_seconds:.2f}s ({speedup:.2f}x, "
        f"{os.cpu_count()} cpus) -> {BENCH_PATH.name}"
    )
    assert speedup >= MIN_SPEEDUP


def main() -> None:
    """Spawn-safe direct entry point."""
    test_parallel_executor_speedup_on_100k_1m_pagerank()


if __name__ == "__main__":
    main()
