"""Figure 5 — impact of the additional capacity c on balance and convergence.

The paper runs this on the 69M-edge LiveJournal graph with k up to 64; at
that scale a partition holds tens of thousands of vertices, so the
granularity of individual (hub) vertices is negligible and ``rho`` tracks
``c`` tightly.  The scaled-down proxy keeps that regime by using k values
for which each partition still holds hundreds of vertices (k = 4, 8); the
trends — ``rho`` roughly bounded by ``c`` and convergence speeding up with
``c`` — are the reproduced result.
"""

import numpy as np

from benchmarks.conftest import print_rows
from repro.experiments.fig5 import run_fig5


def test_fig5_capacity(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig5(c_values=(1.02, 1.05, 1.10, 1.20), k_values=(4, 8),
                         repeats=2, scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Figure 5 — rho and iterations to converge vs c (LiveJournal proxy)", rows)

    # Fig 5(a): the achieved unbalance tracks c (rho <= c up to a small
    # granularity slack).
    for row in rows:
        assert row["rho_mean"] <= row["c"] + 0.1

    # Fig 5(b): larger c converges in fewer iterations on average.
    by_c = {}
    for row in rows:
        by_c.setdefault(row["c"], []).append(row["iterations"])
    mean_iters = {c: float(np.mean(v)) for c, v in by_c.items()}
    assert mean_iters[1.20] < mean_iters[1.02]
    assert mean_iters[1.10] <= mean_iters[1.02]
