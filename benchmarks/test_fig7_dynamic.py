"""Figure 7 — adapting the partitioning to dynamic graph changes."""

from benchmarks.conftest import print_rows
from repro.experiments.fig7 import run_fig7


def test_fig7_dynamic_adaptation(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig7(change_fractions=(0.005, 0.01, 0.05, 0.10, 0.20, 0.30),
                         num_partitions=16, scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 7 — incremental adaptation vs repartitioning from scratch "
        "(paper: up to 86% time / 92% message savings; 8-11% vs 95-98% vertices moved)",
        rows,
    )
    for row in rows:
        # (a) adapting is cheaper than repartitioning from scratch.
        assert row["time_savings_pct"] > 0
        assert row["message_savings_pct"] > 0
        # (b) adapting moves far fewer vertices than repartitioning.
        assert row["moved_adaptive_pct"] < row["moved_scratch_pct"]
        # Quality after adaptation stays comparable to a scratch run.
        assert row["phi_adaptive"] >= row["phi_scratch"] - 0.1
