"""Table IV — impact of partitioning balance on worker load (PageRank)."""

from benchmarks.conftest import print_rows
from repro.experiments.table4 import run_table4


def test_table4_worker_load(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table4(num_workers=16, num_partitions=16, pagerank_iterations=10,
                           scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Table IV — superstep worker time, hash vs Spinner placement "
        "(paper: Spinner reduces mean and max superstep time)",
        rows,
    )
    by_approach = {row["approach"]: row for row in rows}
    assert by_approach["spinner"]["mean"] < by_approach["random"]["mean"]
    assert by_approach["spinner"]["max"] < by_approach["random"]["max"]
