"""Robustness benchmark: checkpointing overhead and recovery equality.

Runs the 100k-vertex / ~1M-edge PageRank workload (the same scale as
``test_pregel_speed.py``) through the vector engine three ways:

* **clean** — no fault tolerance;
* **checkpointed** — ``checkpoint_interval=5``, snapshots written to a
  scratch directory; the end-to-end overhead versus the clean run must
  stay within 10% (relaxable via ``RECOVERY_BENCH_MAX_OVERHEAD`` on
  noisy shared runners);
* **recovered** — a deterministic worker crash mid-run, recovered from
  the latest checkpoint; the result must be byte-identical to the clean
  run (values, supersteps, halt reason, aggregator histories and
  per-superstep statistics).

The dictionary engine is measured at a reduced size (it is orders of
magnitude slower per vertex) and reported without an overhead assertion.
Numbers land in ``BENCH_recovery.json`` at the repo root.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_recovery_overhead.py -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.pagerank import BatchPageRank, PageRank
from repro.faults import FaultPlan, WorkerCrash
from repro.graph.csr import CSRGraph
from bench_io import bench_path, env_float, env_int, write_bench
from repro.pregel.engine import PregelEngine
from repro.pregel.vector_engine import VectorPregelEngine

BENCH_PATH = bench_path("BENCH_recovery.json")

NUM_VERTICES = env_int("RECOVERY_BENCH_NUM_VERTICES", 100000)
DICT_NUM_VERTICES = env_int("RECOVERY_BENCH_DICT_NUM_VERTICES", 10000)
HALF_DEGREE = 10  # 10 ring neighbours per side -> ~1M undirected edges
REWIRE_BETA = 0.2
NUM_WORKERS = 8
# 28 iterations -> 30 supersteps -> checkpoints at 0,5,...,25: exactly one
# snapshot per CHECKPOINT_INTERVAL supersteps, the density the overhead
# figure is quoted for.
PAGERANK_ITERATIONS = 28
CHECKPOINT_INTERVAL = 5
MAX_OVERHEAD = env_float("RECOVERY_BENCH_MAX_OVERHEAD", 0.10)
REPEATS = 3


def _watts_strogatz_csr(num_vertices: int, seed: int) -> CSRGraph:
    """Same deduplicated generator as ``test_pregel_speed.py``."""
    rng = np.random.default_rng(seed)
    u = np.repeat(np.arange(num_vertices, dtype=np.int64), HALF_DEGREE)
    v = (u + np.tile(np.arange(1, HALF_DEGREE + 1, dtype=np.int64), num_vertices)) % (
        num_vertices
    )
    rewire = rng.random(u.shape[0]) < REWIRE_BETA
    v = v.copy()
    v[rewire] = rng.integers(num_vertices, size=int(rewire.sum()))
    keep = u != v
    lo = np.minimum(u[keep], v[keep])
    hi = np.maximum(u[keep], v[keep])
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return CSRGraph.from_edge_list(pairs, num_vertices)


def _vector_run(csr: CSRGraph, **engine_kwargs):
    engine = VectorPregelEngine(num_workers=NUM_WORKERS, **engine_kwargs)
    start = time.perf_counter()
    result = engine.run_on_csr(BatchPageRank(num_iterations=PAGERANK_ITERATIONS), csr)
    return result, time.perf_counter() - start


def test_checkpoint_overhead_and_recovery_equality(tmp_path):
    csr = _watts_strogatz_csr(NUM_VERTICES, seed=7)
    ckpt_kwargs = {
        "checkpoint_interval": CHECKPOINT_INTERVAL,
        "checkpoint_dir": tmp_path / "overhead",
    }

    # Untimed warmup: pays the one-time costs on both sides (allocator and
    # cache warmup; the static shard.npz, written once per checkpoint
    # directory and shared by every snapshot of the job's lifetime).
    _vector_run(csr)
    ckpt_result, _ = _vector_run(csr, **ckpt_kwargs)

    # Interleave clean and checkpointed repeats so disk and scheduler
    # noise hits both sides alike, and compare best against best.
    clean_seconds = ckpt_seconds = float("inf")
    for _ in range(REPEATS):
        clean_result, seconds = _vector_run(csr)
        clean_seconds = min(clean_seconds, seconds)
        ckpt_result, seconds = _vector_run(csr, **ckpt_kwargs)
        ckpt_seconds = min(ckpt_seconds, seconds)
    overhead = ckpt_seconds / clean_seconds - 1.0

    # Checkpointing must not change the result.
    assert np.array_equal(ckpt_result.values, clean_result.values)
    assert ckpt_result.stats.checkpoints_written >= 2

    # Crash mid-run, recover, and demand the uninterrupted answer.
    crash_superstep = CHECKPOINT_INTERVAL + 1
    engine = VectorPregelEngine(
        num_workers=NUM_WORKERS,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        checkpoint_dir=tmp_path / "recovery",
        fault_plan=FaultPlan(crashes=(WorkerCrash(superstep=crash_superstep, worker=3),)),
    )
    start = time.perf_counter()
    recovered = engine.run_on_csr(
        BatchPageRank(num_iterations=PAGERANK_ITERATIONS), csr
    )
    recovered_seconds = time.perf_counter() - start
    assert recovered.stats.recoveries == 1
    assert np.array_equal(recovered.values, clean_result.values)
    assert np.array_equal(recovered.original_ids, clean_result.original_ids)
    assert recovered.num_supersteps == clean_result.num_supersteps
    assert recovered.halt_reason == clean_result.halt_reason
    assert recovered.aggregator_history == clean_result.aggregator_history
    assert recovered.stats.superstep_stats == clean_result.stats.superstep_stats

    # Dictionary engine at reduced scale, reported but not asserted: its
    # per-superstep Python cost dwarfs the snapshot cost, so the overhead
    # figure is informational only.
    dict_csr = _watts_strogatz_csr(DICT_NUM_VERTICES, seed=7)
    dict_vertices = PregelEngine.vertices_from_csr(dict_csr)
    start = time.perf_counter()
    PregelEngine(num_workers=NUM_WORKERS).run(
        PageRank(num_iterations=PAGERANK_ITERATIONS), dict_vertices
    )
    dict_clean_seconds = time.perf_counter() - start
    dict_vertices = PregelEngine.vertices_from_csr(dict_csr)
    start = time.perf_counter()
    PregelEngine(
        num_workers=NUM_WORKERS,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        checkpoint_dir=tmp_path / "dict",
    ).run(PageRank(num_iterations=PAGERANK_ITERATIONS), dict_vertices)
    dict_ckpt_seconds = time.perf_counter() - start

    payload = {
        "workload": {
            "num_vertices": csr.num_vertices,
            "num_edges": csr.num_edges,
            "num_workers": NUM_WORKERS,
            "pagerank_iterations": PAGERANK_ITERATIONS,
            "checkpoint_interval": CHECKPOINT_INTERVAL,
            "generator": "watts-strogatz (ring degree 20, beta 0.2, deduped)",
            "seed": 7,
        },
        "vector": {
            "clean_seconds": round(clean_seconds, 4),
            "checkpointed_seconds": round(ckpt_seconds, 4),
            "overhead": round(overhead, 4),
            "recovered_seconds": round(recovered_seconds, 4),
            "checkpoints_written": ckpt_result.stats.checkpoints_written,
            "recoveries": recovered.stats.recoveries,
            "recovered_byte_identical": True,
        },
        "dict_reduced": {
            "num_vertices": dict_csr.num_vertices,
            "clean_seconds": round(dict_clean_seconds, 4),
            "checkpointed_seconds": round(dict_ckpt_seconds, 4),
            "overhead": round(dict_ckpt_seconds / dict_clean_seconds - 1.0, 4),
        },
        "max_overhead": MAX_OVERHEAD,
    }
    write_bench(BENCH_PATH, payload)
    print(
        f"\nrecovery overhead: clean {clean_seconds:.2f}s -> checkpointed "
        f"{ckpt_seconds:.2f}s ({overhead:+.1%}), recovered run "
        f"{recovered_seconds:.2f}s -> {BENCH_PATH.name}"
    )
    assert overhead <= MAX_OVERHEAD
