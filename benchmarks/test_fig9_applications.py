"""Figure 9 — impact of the Spinner partitioning on application runtimes."""

from benchmarks.conftest import print_rows
from repro.experiments.fig9 import run_fig9


def test_fig9_application_performance(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_fig9(scale=scale), rounds=1, iterations=1)
    print_rows(
        "Figure 9 — % runtime improvement of SP / PR / CC with Spinner placement "
        "(paper: 25-50%)",
        rows,
    )
    for row in rows:
        # Spinner placement reduces both runtime and network traffic for
        # every application / graph combination.
        assert row["improvement_pct"] > 0, row
        assert row["remote_msgs_spinner"] < row["remote_msgs_hash"], row
