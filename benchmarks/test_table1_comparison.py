"""Table I — Spinner vs Wang / LDG / Fennel / METIS on the Twitter proxy."""

from benchmarks.conftest import print_rows
from repro.experiments.table1 import run_table1


def test_table1_comparison(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table1(k_values=(2, 4, 8, 16, 32), scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows("Table I — phi / rho per approach and k (Twitter proxy)", rows)

    by_key = {(row["approach"], row["k"]): row for row in rows}
    for k in (2, 4, 8, 16, 32):
        spinner = by_key[("spinner", k)]
        # Spinner's balance stays tight (the paper reports 1.02-1.05).
        assert spinner["rho"] <= 1.3
        # Spinner's locality is competitive with the best baseline.
        best_phi = max(row["phi"] for (_a, kk), row in by_key.items() if kk == k)
        assert spinner["phi"] >= 0.75 * best_phi
