"""Unit tests for the shared ``BENCH_*.json`` I/O helpers."""

from __future__ import annotations

import json
import math

import pytest

from benchmarks.bench_io import (
    _host_metadata_once,
    host_metadata,
    write_bench,
)


def test_host_metadata_collected_once_and_copied():
    first = host_metadata()
    second = host_metadata()
    assert first == second
    assert first is not second  # callers get copies, not the cache
    first["cpu_count"] = -1
    assert host_metadata()["cpu_count"] != -1  # mutation didn't leak back
    assert _host_metadata_once() is _host_metadata_once()  # memoized


def test_write_bench_injects_host_once(tmp_path):
    target = tmp_path / "BENCH_test.json"
    write_bench(target, {"metric": 1.5})
    payload = json.loads(target.read_text())
    assert payload["metric"] == 1.5
    assert set(payload["host"]) == {"cpu_count", "platform", "python"}
    # An explicit host block is kept verbatim, not overwritten.
    write_bench(target, {"metric": 2.0, "host": {"note": "pinned"}})
    assert json.loads(target.read_text())["host"] == {"note": "pinned"}


@pytest.mark.parametrize(
    ("payload", "fragment"),
    [
        ({"qps": float("nan")}, "'qps'"),
        ({"rows": [{"qps": float("inf")}]}, "'rows[0].qps'"),
        ({"nested": {"deep": [1.0, -math.inf]}}, "'nested.deep[1]'"),
    ],
)
def test_write_bench_rejects_non_finite_metrics(tmp_path, payload, fragment):
    target = tmp_path / "BENCH_test.json"
    with pytest.raises(ValueError, match="non-finite"):
        try:
            write_bench(target, payload)
        except ValueError as exc:
            assert fragment in str(exc)
            raise
    assert not target.exists()  # nothing was written


def test_write_bench_accepts_finite_payload(tmp_path):
    target = tmp_path / "BENCH_test.json"
    write_bench(target, {"rows": [{"qps": 1e6, "n": 3}], "note": "ok"})
    assert json.loads(target.read_text())["rows"][0]["qps"] == 1e6
