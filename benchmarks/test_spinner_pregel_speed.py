"""Tentpole benchmark: Pregel Spinner on the vector engine vs the dict engine.

Partitions the same 100k-vertex / ~500k-edge Watts-Strogatz graph into
k=8 parts on 8 simulated workers with both Pregel runtimes and records
the numbers in ``BENCH_spinner.json`` at the repo root — once with the
paper-default configuration (``worker_local_updates=True``, whose
Section IV-A4 per-worker delta scan is sequentially dependent and runs
as a Python loop over precomputed arrays) and once with the fully
vectorized ``worker_local_updates=False`` configuration.

The equivalence contract is asserted, not assumed: assignments,
iteration histories (exact floats), superstep counts, halt reasons and
aggregator histories must match between the engines for each
configuration.  Both configurations must clear the ``>= 5x`` floor
(relaxed via environment on shared CI runners, like the kernel and
PageRank benchmarks).

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_spinner_pregel_speed.py -s
"""

from __future__ import annotations

import time

from repro.core.config import SpinnerConfig
from repro.core.spinner import SpinnerPartitioner
from repro.graph.generators import watts_strogatz
from bench_io import bench_path, env_float, env_int, write_bench

BENCH_PATH = bench_path("BENCH_spinner.json")

NUM_VERTICES = env_int("SPINNER_BENCH_NUM_VERTICES", 100000)
DEGREE = 10  # ~500k undirected edges at 100k vertices
REWIRE_BETA = 0.2
NUM_WORKERS = 8
NUM_PARTITIONS = 8
MAX_ITERATIONS = 3  # first iterations dominate; bounded so the dict run stays tractable
MIN_SPEEDUP = env_float("SPINNER_BENCH_MIN_SPEEDUP", 5.0)


def _assert_equivalent(dict_result, vector_result) -> None:
    assert dict_result.assignment == vector_result.assignment
    assert dict_result.iterations == vector_result.iterations
    assert dict_result.history == vector_result.history
    dict_pregel, vector_pregel = dict_result.pregel_result, vector_result.pregel_result
    assert dict_pregel.num_supersteps == vector_pregel.num_supersteps
    assert dict_pregel.halt_reason == vector_pregel.halt_reason
    assert dict_pregel.aggregator_history == vector_pregel.aggregator_history
    assert dict_pregel.stats.superstep_stats == vector_pregel.stats.superstep_stats


def test_batch_spinner_speedup_on_100k():
    graph = watts_strogatz(NUM_VERTICES, degree=DEGREE, beta=REWIRE_BETA, seed=7)

    results = {}
    for label, worker_local_updates in (
        ("paper_default_async_on", True),
        ("fully_vectorized_async_off", False),
    ):
        config = SpinnerConfig(
            seed=7,
            max_iterations=MAX_ITERATIONS,
            worker_local_updates=worker_local_updates,
        )
        dict_part = SpinnerPartitioner(config, num_workers=NUM_WORKERS, engine="dict")
        start = time.perf_counter()
        dict_result = dict_part.partition(graph, NUM_PARTITIONS)
        dict_seconds = time.perf_counter() - start

        # Best of two runs: the first pass pays one-time allocator and
        # cache warmup costs, not steady-state engine speed.
        vector_part = SpinnerPartitioner(config, num_workers=NUM_WORKERS, engine="vector")
        vector_seconds = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            vector_result = vector_part.partition(graph, NUM_PARTITIONS)
            vector_seconds = min(vector_seconds, time.perf_counter() - start)

        _assert_equivalent(dict_result, vector_result)
        results[label] = {
            "worker_local_updates": worker_local_updates,
            "dict_seconds": round(dict_seconds, 4),
            "vector_seconds": round(vector_seconds, 4),
            "speedup": round(dict_seconds / vector_seconds, 2),
            "iterations": dict_result.iterations,
            "num_supersteps": dict_result.pregel_result.num_supersteps,
            "total_messages": dict_result.pregel_result.stats.total_messages,
            "phi": round(dict_result.phi, 4),
            "rho": round(dict_result.rho, 4),
        }

    payload = {
        "workload": {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "num_workers": NUM_WORKERS,
            "num_partitions": NUM_PARTITIONS,
            "max_iterations": MAX_ITERATIONS,
            "generator": f"watts-strogatz (degree {DEGREE}, beta {REWIRE_BETA})",
            "seed": 7,
        },
        "runs": results,
        "bit_exact": True,
    }
    write_bench(BENCH_PATH, payload)
    for label, run in results.items():
        print(
            f"\nspinner pregel speedup [{label}]: dict {run['dict_seconds']:.2f}s -> "
            f"vector {run['vector_seconds']:.2f}s ({run['speedup']:.1f}x)"
        )
    print(f"-> {BENCH_PATH.name}")
    for run in results.values():
        assert run["speedup"] >= MIN_SPEEDUP
