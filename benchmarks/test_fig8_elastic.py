"""Figure 8 — adapting the partitioning to resource (partition-count) changes."""

from benchmarks.conftest import print_rows
from repro.experiments.fig8 import run_fig8


def test_fig8_elastic_adaptation(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig8(new_partition_counts=(1, 2, 4, 6, 8), initial_partitions=16,
                         scale=scale),
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 8 — elastic adaptation vs repartitioning from scratch "
        "(paper: 74% faster for +1 partition; <17% vs ~96% vertices moved)",
        rows,
    )
    for row in rows:
        assert row["moved_adaptive_pct"] < row["moved_scratch_pct"]
    # Adding a single partition is the cheapest adaptation.
    assert rows[0]["time_savings_pct"] >= rows[-1]["time_savings_pct"] - 15
