"""Tentpole benchmark: frontier delta kernel vs. the dense reference kernel.

Times ``FastSpinner.partition`` end-to-end on a 100k-vertex / 1M-edge
Watts-Strogatz-style graph (the paper's Figure 6 scalability workload) at
``k = 32`` under both kernels and records the numbers in
``BENCH_kernel.json`` at the repo root so the performance trajectory is
tracked from PR to PR.

Two phases are measured:

* **cold** — random initial labels.  Spinner's capacity constraint caps
  migration volume at the capacity slack (~5% of load per iteration), so
  the frontier stays moderately large; the delta kernel still wins but
  the gap is bandwidth-limited (recorded, not asserted).
* **incremental** — repartitioning after 2% membership churn on a
  locality-seeded assignment, the paper's Section III-D scenario and the
  regime the frontier kernel is designed for.  Migrations decay to a
  handful per iteration, per-iteration work collapses to the frontier
  volume, and the >= 5x end-to-end speedup is asserted here.

Both phases assert byte-identical labels between the kernels.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_speed.py -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.graph.csr import CSRGraph
from bench_io import bench_path, env_float, write_bench

BENCH_PATH = bench_path("BENCH_kernel.json")

NUM_VERTICES = 100_000
HALF_DEGREE = 10  # 10 ring neighbours per side -> 1M undirected edges
REWIRE_BETA = 0.2
NUM_PARTITIONS = 32
COLD_ITERATIONS = 12
INCREMENTAL_ITERATIONS = 48
CHURN_FRACTION = 0.02
# Shared CI runners have noisy wall clocks; they may relax the floor via
# the environment (see .github/workflows/ci.yml) without touching the
# dedicated-machine contract of 5x.
MIN_SPEEDUP = env_float("KERNEL_BENCH_MIN_SPEEDUP", 5.0)


def _watts_strogatz_csr(num_vertices: int, seed: int) -> CSRGraph:
    """Vectorized Watts-Strogatz-style graph (ring lattice + rewiring)."""
    rng = np.random.default_rng(seed)
    u = np.repeat(np.arange(num_vertices, dtype=np.int64), HALF_DEGREE)
    v = (u + np.tile(np.arange(1, HALF_DEGREE + 1, dtype=np.int64), num_vertices)) % (
        num_vertices
    )
    rewire = rng.random(u.shape[0]) < REWIRE_BETA
    v = v.copy()
    v[rewire] = rng.integers(num_vertices, size=int(rewire.sum()))
    keep = u != v
    return CSRGraph.from_edge_list(np.stack([u[keep], v[keep]], axis=1), num_vertices)


def _churned_assignment(num_vertices: int, seed: int) -> np.ndarray:
    """Locality-seeded assignment with a randomly relabelled 2% slice."""
    labels = (np.arange(num_vertices, dtype=np.int64) * NUM_PARTITIONS) // num_vertices
    rng = np.random.default_rng(seed)
    churn = rng.random(num_vertices) < CHURN_FRACTION
    labels[churn] = rng.integers(NUM_PARTITIONS, size=int(churn.sum()))
    return labels


def _time_partition(config, csr, initial, repeats):
    """Best wall clock over ``repeats`` full partition runs."""
    spinner = FastSpinner(config)
    best = float("inf")
    result = None
    for _ in range(repeats):
        init = None if initial is None else initial.copy()
        start = time.perf_counter()
        result = spinner.partition(
            csr, NUM_PARTITIONS, initial_labels=init, track_history=False
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_phase(csr, iterations, initial, repeats):
    config = SpinnerConfig(
        seed=11, max_iterations=iterations, halt_window=iterations + 5
    )
    dense_seconds, dense = _time_partition(
        config.with_options(kernel="dense"), csr, initial, repeats
    )
    frontier_seconds, frontier = _time_partition(
        config.with_options(kernel="frontier"), csr, initial, repeats
    )
    assert np.array_equal(dense.labels, frontier.labels)
    assert dense.iterations == frontier.iterations == iterations
    assert dense.total_messages == frontier.total_messages
    return {
        "iterations": iterations,
        "dense_seconds": round(dense_seconds, 4),
        "frontier_seconds": round(frontier_seconds, 4),
        "speedup": round(dense_seconds / frontier_seconds, 2),
        "phi": round(frontier.phi, 4),
        "rho": round(frontier.rho, 4),
        "labels_identical": True,
    }


def test_frontier_kernel_speedup_on_100k_1m_graph():
    csr = _watts_strogatz_csr(NUM_VERTICES, seed=7)
    cold = _run_phase(csr, COLD_ITERATIONS, initial=None, repeats=1)
    # Best of three: the asserted phase sits close enough to the 5x floor
    # that a single noisy wall clock on a loaded machine can dip below it.
    incremental = _run_phase(
        csr,
        INCREMENTAL_ITERATIONS,
        initial=_churned_assignment(NUM_VERTICES, seed=3),
        repeats=3,
    )

    payload = {
        "workload": {
            "num_vertices": csr.num_vertices,
            "num_edges": csr.num_edges,
            "num_partitions": NUM_PARTITIONS,
            "generator": "watts-strogatz (ring degree 20, beta 0.2)",
            "seed": 11,
        },
        "cold_start": cold,
        "incremental_2pct_churn": incremental,
    }
    write_bench(BENCH_PATH, payload)
    print(
        "\nkernel speedup: cold "
        f"{cold['dense_seconds']:.2f}s -> {cold['frontier_seconds']:.2f}s "
        f"({cold['speedup']:.1f}x); incremental "
        f"{incremental['dense_seconds']:.2f}s -> "
        f"{incremental['frontier_seconds']:.2f}s "
        f"({incremental['speedup']:.1f}x) -> {BENCH_PATH.name}"
    )
    assert incremental["speedup"] >= MIN_SPEEDUP
