"""Tentpole benchmark: 100M-edge out-of-core ingestion + partitioning.

Drives :mod:`repro.experiments.scale` in a fresh subprocess — ingestion of
a synthetic 100M-edge stream through the chunked external sort into an
on-disk CSR store, followed by an out-of-core FastSpinner partition
(``storage="mmap"``) — and asserts that the subprocess's peak RSS stays
under a configurable memory budget (default 2 GiB) even though the store
holds ~1.6 GB of half-edge arrays plus spool/run temporaries.  The
numbers (edges/second for both phases, peak RSS) are recorded in
``BENCH_scale.json`` at the repo root.

The subprocess isolation matters: ``resource.getrusage`` reports a
process-lifetime high-water mark, so measuring in-process would inherit
whatever pytest and earlier tests already touched.

Defaults take a few minutes and ~5 GB of scratch disk; both are
environment-tunable (CI runs a reduced-size smoke, see
``.github/workflows/ci.yml``)::

    SCALE_BENCH_NUM_EDGES=2000000 \
        PYTHONPATH=src python -m pytest benchmarks/test_scale_speed.py -s
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

from bench_io import bench_path, env_float, env_int, write_bench

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = bench_path("BENCH_scale.json")

NUM_EDGES = env_int("SCALE_BENCH_NUM_EDGES", 100000000)
NUM_PARTITIONS = env_int("SCALE_BENCH_NUM_PARTITIONS", 8)
MAX_ITERATIONS = env_int("SCALE_BENCH_MAX_ITERATIONS", 10)
SEED = env_int("SCALE_BENCH_SEED", 42)
#: Peak-RSS ceiling for the subprocess, in MiB (the ISSUE's "configurable
#: memory budget, default <= 2 GB").
MEMORY_BUDGET_MB = env_float("SCALE_BENCH_MEMORY_BUDGET_MB", 2048)

# Scratch requirement: the final store holds 16 bytes per half-edge
# (indices + hidden page-cache copies aside, weights are unit and
# omitted), and during ingestion the spool (16 B/edge) and sorted runs
# (8 B/half-edge) coexist with it.  Budget ~56 B/edge plus slack.
_REQUIRED_DISK_BYTES = NUM_EDGES * 56 + (1 << 30)


def _scratch_dir() -> str:
    """Scratch root for the store (``SCALE_BENCH_TMPDIR`` or system tmp)."""
    return os.environ.get("SCALE_BENCH_TMPDIR", tempfile.gettempdir())


def test_out_of_core_scale_under_memory_budget():
    free = shutil.disk_usage(_scratch_dir()).free
    if free < _REQUIRED_DISK_BYTES:
        pytest.skip(
            f"needs ~{_REQUIRED_DISK_BYTES / 1e9:.1f} GB scratch in "
            f"{_scratch_dir()}, only {free / 1e9:.1f} GB free"
        )

    store_dir = tempfile.mkdtemp(prefix="spinner-scale-bench-", dir=_scratch_dir())
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    try:
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments.scale",
                "--num-edges",
                str(NUM_EDGES),
                "--num-partitions",
                str(NUM_PARTITIONS),
                "--max-iterations",
                str(MAX_ITERATIONS),
                "--seed",
                str(SEED),
                "--store",
                store_dir,
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    payload = {
        "benchmark": "out-of-core ingestion + mmap-tier FastSpinner",
        "memory_budget_mb": MEMORY_BUDGET_MB,
        "results": stats,
    }
    write_bench(BENCH_PATH, payload)
    print()
    print(json.dumps(payload, indent=2))

    assert stats["num_edges"] == NUM_EDGES
    assert stats["store_half_edges"] == 2 * NUM_EDGES
    assert stats["iterations"] >= 1
    assert stats["peak_rss_mb"] <= MEMORY_BUDGET_MB, stats
