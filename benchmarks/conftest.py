"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper: it runs the
corresponding harness from :mod:`repro.experiments` under pytest-benchmark
(so the runtime of the experiment itself is tracked) and prints the rows
the paper reports, so the textual output of

    pytest benchmarks/ --benchmark-only -s

is the reproduction of the evaluation section.  The workload sizes are
scaled-down proxies (see DESIGN.md); shapes and relative comparisons are
the meaningful output, not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Benchmark-sized workloads (a few thousand vertices per graph)."""
    return ExperimentScale.default()


def print_rows(title: str, rows: list[dict], columns: list[str] | None = None) -> None:
    """Print experiment rows as an aligned table below the benchmark output."""
    from repro.metrics.reporting import format_table

    print()
    print(format_table(rows, columns=columns, title=title))
