"""Legacy setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package or
network access (legacy ``pip install -e . --no-use-pep517`` path).
"""

from setuptools import setup

setup()
