#!/usr/bin/env python3
"""Sharding a growing social network across database servers.

This is the scenario that motivates Spinner's *incremental* and *elastic*
modes (Sections III-D and III-E of the paper): a graph database shards a
social graph across servers; friendships keep being created, and every now
and then servers are added.  Repartitioning from scratch each time would
shuffle almost every user; Spinner adapts the existing partitioning
instead.

Run with:  python examples/social_network_sharding.py
"""

from __future__ import annotations

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.graph.datasets import tuenti_proxy
from repro.graph.dynamic import EdgeArrivalStream
from repro.metrics.reporting import format_table, improvement_percentage
from repro.metrics.stability import partitioning_difference


def main() -> None:
    servers = 16
    spinner = FastSpinner(SpinnerConfig(seed=7))

    # The "future" social graph; we withhold 30% of friendships and replay
    # them later as growth.
    full_graph = tuenti_proxy(scale=0.4, seed=7)
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=7)
    snapshot = stream.snapshot()
    print(
        f"initial snapshot: {snapshot.num_vertices} users, "
        f"{snapshot.num_edges} friendships, {servers} servers"
    )

    # --- initial sharding -------------------------------------------------
    initial = spinner.partition(snapshot, servers)
    print(f"initial sharding: phi={initial.phi:.3f} rho={initial.rho:.3f} "
          f"({initial.iterations} iterations)")

    # --- the graph grows: adapt instead of repartitioning ------------------
    rows = []
    assignment = initial.to_assignment()
    for growth in (0.01, 0.05, 0.10):
        grown = stream.snapshot()
        stream.reset()
        stream.delta(fraction_of_snapshot=growth).apply(grown)

        adapted = spinner.adapt_to_graph_changes(grown, assignment, servers)
        scratch = FastSpinner(SpinnerConfig(seed=8)).partition(grown, servers)
        rows.append(
            {
                "new_friendships_pct": growth * 100,
                "users_moved_adaptive_pct": 100 * partitioning_difference(
                    assignment, adapted.to_assignment()
                ),
                "users_moved_scratch_pct": 100 * partitioning_difference(
                    assignment, scratch.to_assignment()
                ),
                "time_saved_pct": improvement_percentage(
                    scratch.iterations, adapted.iterations
                ),
                "phi_adaptive": adapted.phi,
            }
        )
    print()
    print(format_table(rows, title="Adapting to graph growth (vs repartitioning)"))

    # --- the cluster grows: elastic adaptation -----------------------------
    grown = stream.snapshot()
    stream.reset()
    stream.delta(fraction_of_snapshot=0.05).apply(grown)
    adapted = spinner.adapt_to_graph_changes(grown, assignment, servers)

    new_servers = servers + 2
    elastic = spinner.adapt_to_partition_change(
        grown, adapted.to_assignment(), servers, new_servers
    )
    moved = partitioning_difference(adapted.to_assignment(), elastic.to_assignment())
    print()
    print(
        f"scaling from {servers} to {new_servers} servers: "
        f"{moved * 100:.1f}% of users move, phi={elastic.phi:.3f}, rho={elastic.rho:.3f}"
    )


if __name__ == "__main__":
    main()
