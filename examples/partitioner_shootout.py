#!/usr/bin/env python3
"""Compare Spinner against the baseline partitioners on one graph.

A runnable miniature of Table I: every registered partitioner (hash, LDG,
Fennel, the METIS-like multilevel partitioner, Wang et al. and the three
Spinner variants) partitions the same Twitter-like graph, and the script
prints locality, balance and the runtime each Spinner variant executed on
(FastSpinner kernel, dict Pregel engine or vector Pregel engine), for a
range of partition counts.

Run with:  python examples/partitioner_shootout.py
"""

from __future__ import annotations

import time

from repro.core.config import SpinnerConfig
from repro.graph.conversion import ensure_undirected
from repro.graph.datasets import twitter_proxy
from repro.metrics.reporting import format_table
from repro.partitioners.registry import SPINNER_PARTITIONERS, make_partitioner


def _runtime_label(name: str, config: SpinnerConfig) -> str:
    """Human-readable runtime each Spinner variant executes on."""
    if name == "spinner":
        return f"fast/{config.kernel}"
    if name == "spinner-pregel":
        return f"pregel/{config.engine}"
    if name == "spinner-pregel-vector":
        return "pregel/vector"
    return "-"


def main() -> None:
    """Run every partitioner on the Twitter proxy and print the comparison."""
    graph = ensure_undirected(twitter_proxy(scale=0.25, seed=4))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    approaches = (
        "hash",
        "ldg",
        "fennel",
        "metis",
        "wang",
        "spinner",
        "spinner-pregel",
        "spinner-pregel-vector",
    )
    rows = []
    for k in (4, 16):
        for name in approaches:
            config = SpinnerConfig(seed=4)
            if name in SPINNER_PARTITIONERS:
                partitioner = make_partitioner(name, config=config)
            else:
                partitioner = make_partitioner(name)
            start = time.perf_counter()
            output = partitioner.run(graph, k)
            rows.append(
                {
                    "k": k,
                    "partitioner": name,
                    "runtime": _runtime_label(name, config),
                    "phi": round(output.phi, 3),
                    "rho": round(output.rho, 3),
                    "seconds": round(time.perf_counter() - start, 2),
                }
            )
    print()
    print(format_table(rows, title="Partitioner comparison (Twitter proxy)"))


if __name__ == "__main__":
    main()
