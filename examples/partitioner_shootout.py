#!/usr/bin/env python3
"""Compare Spinner against the baseline partitioners on one graph.

A runnable miniature of Table I: every registered partitioner (hash, LDG,
Fennel, the METIS-like multilevel partitioner, Wang et al. and Spinner)
partitions the same Twitter-like graph, and the script prints locality and
balance for each, for a range of partition counts.

Run with:  python examples/partitioner_shootout.py
"""

from __future__ import annotations

import time

from repro.core.config import SpinnerConfig
from repro.graph.conversion import ensure_undirected
from repro.graph.datasets import twitter_proxy
from repro.metrics.reporting import format_table
from repro.partitioners.registry import make_partitioner


def main() -> None:
    graph = ensure_undirected(twitter_proxy(scale=0.25, seed=4))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    approaches = ("hash", "ldg", "fennel", "metis", "wang", "spinner")
    rows = []
    for k in (4, 16):
        for name in approaches:
            if name == "spinner":
                partitioner = make_partitioner(name, config=SpinnerConfig(seed=4))
            else:
                partitioner = make_partitioner(name)
            start = time.perf_counter()
            output = partitioner.run(graph, k)
            rows.append(
                {
                    "k": k,
                    "partitioner": name,
                    "phi": round(output.phi, 3),
                    "rho": round(output.rho, 3),
                    "seconds": round(time.perf_counter() - start, 2),
                }
            )
    print()
    print(format_table(rows, title="Partitioner comparison (Twitter proxy)"))


if __name__ == "__main__":
    main()
