#!/usr/bin/env python3
"""Accelerating Giraph-style analytics with a Spinner partitioning.

Reproduces, as a runnable example, the integration of Section V-F of the
paper: partition the input graph with Spinner, place vertices with the
same label on the same worker of the (simulated) Giraph cluster, and
compare PageRank / shortest paths / connected components runtimes against
the default hash placement.

Run with:  python examples/graph_analytics_acceleration.py
"""

from __future__ import annotations

from repro.apps.pagerank import PageRank
from repro.apps.sssp import ShortestPaths
from repro.apps.wcc import WeaklyConnectedComponents
from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.experiments.giraph import run_application
from repro.graph.conversion import ensure_undirected
from repro.graph.datasets import livejournal_proxy
from repro.metrics.reporting import format_table, improvement_percentage


def main() -> None:
    workers = 8

    graph = ensure_undirected(livejournal_proxy(scale=0.3, seed=3))
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"{workers} workers")

    # Partition once with Spinner; reuse the assignment for every workload.
    assignment = FastSpinner(SpinnerConfig(seed=3)).partition(graph, workers).to_assignment()

    source = next(iter(graph.vertices()))
    applications = {
        "shortest paths (BFS)": ShortestPaths(source=source),
        "pagerank (10 iter)": PageRank(num_iterations=10),
        "connected components": WeaklyConnectedComponents(),
    }

    rows = []
    for name, program_factory in applications.items():
        hash_run = run_application(program_factory, graph, num_workers=workers)
        # Programs carry per-run state in supersteps only, so re-instantiate.
        program_again = type(program_factory)(**_constructor_args(program_factory, source))
        spinner_run = run_application(
            program_again, graph, num_workers=workers, assignment=assignment
        )
        rows.append(
            {
                "application": name,
                "time_hash": round(hash_run.simulated_time, 1),
                "time_spinner": round(spinner_run.simulated_time, 1),
                "improvement_pct": round(
                    improvement_percentage(hash_run.simulated_time,
                                           spinner_run.simulated_time), 1
                ),
                "network_msgs_hash": hash_run.remote_messages,
                "network_msgs_spinner": spinner_run.remote_messages,
            }
        )

    print()
    print(format_table(rows, title="Hash placement vs Spinner placement (simulated cluster)"))


def _constructor_args(program, source):
    """Rebuild constructor arguments for the simple app programs."""
    if isinstance(program, ShortestPaths):
        return {"source": source}
    if isinstance(program, PageRank):
        return {"num_iterations": program.num_iterations}
    return {}


if __name__ == "__main__":
    main()
