#!/usr/bin/env python3
"""Quickstart: partition a graph with Spinner and inspect the result.

Generates a small social-network-like graph, partitions it into 8 parts
with the vectorized Spinner implementation, and compares the locality and
balance against Giraph's default hash partitioning.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.graph.generators import powerlaw_cluster
from repro.metrics.quality import quality_summary
from repro.metrics.reporting import format_table
from repro.partitioners.hashing import HashPartitioner


def main() -> None:
    num_partitions = 8

    # 1. Build a graph (any repro.graph structure or your own edge list).
    graph = powerlaw_cluster(
        num_vertices=3000, edges_per_vertex=8, triangle_probability=0.6, seed=1
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Partition it with Spinner (paper defaults: c=1.05, eps=0.001, w=5).
    spinner = FastSpinner(SpinnerConfig(seed=42))
    result = spinner.partition(graph, num_partitions)
    print(
        f"spinner finished after {result.iterations} iterations "
        f"(halted by {result.halted_by})"
    )

    # 3. Compare against hash partitioning.
    hash_assignment = HashPartitioner().partition(graph, num_partitions)
    rows = [
        {"partitioner": "spinner", **quality_summary(graph, result.to_assignment(),
                                                     num_partitions).as_row()},
        {"partitioner": "hash", **quality_summary(graph, hash_assignment,
                                                  num_partitions).as_row()},
    ]
    print()
    print(format_table(rows, title=f"Partitioning quality (k={num_partitions})"))

    # 4. The per-iteration history shows how locality and balance evolve
    #    (this is the data behind Figure 4 of the paper).
    print()
    print(format_table(
        [
            {"iteration": r.iteration, "phi": round(r.phi, 3), "rho": round(r.rho, 3)}
            for r in result.history[:: max(1, len(result.history) // 10)]
        ],
        title="Convergence history (sampled)",
    ))


if __name__ == "__main__":
    main()
